// Tier-1 coverage for the fault-schedule fuzzer: generator determinism, text
// round-trip, runner determinism, a small always-on schedule sweep, and the
// shrinker (a planted invariant violation must minimize deterministically).
#include <gtest/gtest.h>

#include <string>

#include "fuzz/fault_schedule.h"
#include "fuzz/fuzz_runner.h"
#include "fuzz/shrinker.h"

namespace fuse {
namespace {

TEST(FuzzScheduleTest, GeneratorIsDeterministic) {
  const FaultSchedule a = GenerateSchedule(42);
  const FaultSchedule b = GenerateSchedule(42);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.ToText(), b.ToText());

  bool any_different = false;
  for (uint64_t seed = 43; seed < 48; ++seed) {
    if (!(GenerateSchedule(seed) == a)) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(FuzzScheduleTest, TextFormRoundTrips) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    const FaultSchedule s = GenerateSchedule(seed);
    FaultSchedule back;
    ASSERT_TRUE(FaultSchedule::FromText(s.ToText(), &back)) << "seed " << seed;
    EXPECT_EQ(s, back) << "seed " << seed;
    EXPECT_EQ(s.ToText(), back.ToText()) << "seed " << seed;
  }
}

TEST(FuzzScheduleTest, TextParserRejectsGarbage) {
  FaultSchedule out;
  EXPECT_FALSE(FaultSchedule::FromText("", &out));
  EXPECT_FALSE(FaultSchedule::FromText("not a schedule\n", &out));
  EXPECT_FALSE(FaultSchedule::FromText("fuse-fuzz-schedule v1\nseed x\n", &out));
  EXPECT_FALSE(FaultSchedule::FromText(
      "fuse-fuzz-schedule v1\nseed 1\nnodes 4\ngroups 1\n"
      "frobnicate at_us=0 a=0 b=0 dur_us=0 param=0 group=-\n",
      &out));
}

TEST(FuzzRunnerTest, RunIsDeterministic) {
  const FaultSchedule s = GenerateSchedule(7);
  const FuzzRunResult r1 = RunSchedule(s);
  const FuzzRunResult r2 = RunSchedule(s);
  EXPECT_EQ(r1.log_line, r2.log_line);
  EXPECT_EQ(r1.violations, r2.violations);
}

TEST(FuzzRunnerTest, EmptyScheduleIsQuiet) {
  FaultSchedule s;
  s.seed = 99;
  s.num_nodes = 6;
  s.num_groups = 2;
  const FuzzRunResult r = RunSchedule(s);
  EXPECT_TRUE(r.ok()) << r.log_line;
  EXPECT_EQ(r.groups_created, 2);
  // The must-not-fire half of the oracle: nothing went wrong, so nothing may
  // fire.
  EXPECT_EQ(r.groups_fired, 0);
}

TEST(FuzzRunnerTest, PlantedDuplicateWatchOnlyFiresWithANotification) {
  // The planted duplicate watch alone is harmless until a notification
  // actually arrives.
  FaultSchedule quiet;
  quiet.seed = 3;
  quiet.num_nodes = 6;
  quiet.num_groups = 1;
  FuzzRunOptions opts;
  opts.plant_duplicate_watch = true;
  EXPECT_TRUE(RunSchedule(quiet, opts).ok());

  // An explicit SignalFailure must reach every member — and hits the doubled
  // watch twice: a duplicate-delivery violation.
  FaultSchedule loud = quiet;
  FaultClause c;
  c.op = FaultOp::kSignalFailure;
  c.a = 0;
  loud.clauses.push_back(c);
  const FuzzRunResult r = RunSchedule(loud, opts);
  EXPECT_FALSE(r.ok());
}

TEST(FuzzRunnerTest, ShardedVerdictIndependentOfThreadCount) {
  // The sharded backend must grade a schedule identically no matter how many
  // worker threads execute it: same oracle verdict, same QoS counters, same
  // deterministic log line. (The trace-level version of this lives in
  // determinism_test.cc; here the fuzz oracle — group creation under faults,
  // notification coverage, detection latency — is the fingerprint.)
  for (uint64_t seed : {7u, 19u}) {
    const FaultSchedule s = GenerateSchedule(seed);
    FuzzRunOptions opts;
    opts.num_shards = 4;
    FuzzRunResult by_threads[3];
    const int threads[] = {1, 2, 8};
    for (int i = 0; i < 3; ++i) {
      opts.threads = threads[i];
      by_threads[i] = RunSchedule(s, opts);
    }
    for (int i = 1; i < 3; ++i) {
      EXPECT_EQ(by_threads[0].log_line, by_threads[i].log_line)
          << "seed " << seed << ": " << threads[i] << " workers diverged";
      EXPECT_EQ(by_threads[0].violations, by_threads[i].violations) << "seed " << seed;
      EXPECT_EQ(by_threads[0].max_detection_latency_us, by_threads[i].max_detection_latency_us)
          << "seed " << seed;
    }
    // The invariant itself must also hold on the sharded backend.
    EXPECT_TRUE(by_threads[0].ok())
        << by_threads[0].log_line
        << (by_threads[0].violations.empty() ? "" : "\n  " + by_threads[0].violations[0]);
  }
}

TEST(FuzzSmokeTest, FiftyScheduleSweepHoldsTheInvariant) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    const FaultSchedule s = GenerateSchedule(seed);
    const FuzzRunResult r = RunSchedule(s);
    EXPECT_TRUE(r.ok()) << r.log_line << (r.violations.empty() ? "" : "\n  " + r.violations[0]);
  }
}

TEST(FuzzShrinkerTest, PlantedViolationShrinksToGolden) {
  FaultSchedule failing;
  failing.seed = 7;
  failing.num_nodes = 9;
  failing.num_groups = 3;
  FaultClause pad;  // removable noise the shrinker must strip
  pad.op = FaultOp::kSlowHost;
  pad.a = 4;
  pad.at_us = 30 * 1000 * 1000;
  pad.param = 500.0;
  failing.clauses.push_back(pad);
  FaultClause sig;
  sig.op = FaultOp::kSignalFailure;
  sig.a = 0;
  sig.at_us = 60 * 1000 * 1000;
  failing.clauses.push_back(sig);

  FuzzRunOptions opts;
  opts.plant_duplicate_watch = true;
  const auto still_fails = [&opts](const FaultSchedule& s) { return !RunSchedule(s, opts).ok(); };
  ASSERT_TRUE(still_fails(failing));

  const FaultSchedule min1 = ShrinkSchedule(failing, still_fails);
  const FaultSchedule min2 = ShrinkSchedule(failing, still_fails);
  EXPECT_EQ(min1.ToText(), min2.ToText());  // same input => byte-identical shrink

  EXPECT_EQ(min1.ToText(),
            "fuse-fuzz-schedule v1\n"
            "seed 7\n"
            "nodes 4\n"
            "groups 1\n"
            "signal at_us=0 a=0 b=0 dur_us=0 param=0 group=-\n");
  ASSERT_TRUE(still_fails(min1));  // the minimized repro still reproduces
}

}  // namespace
}  // namespace fuse
