// Integration tests for SV trees (paper section 4): content delivery, FUSE
// fate-sharing on link failure, re-subscription with version stamps, and
// voluntary leave via explicit signalling.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/sim_cluster.h"
#include "svtree/sv_tree.h"

namespace fuse {
namespace {

ClusterConfig SmallConfig(int n, uint64_t seed) {
  ClusterConfig cfg;
  cfg.num_nodes = n;
  cfg.seed = seed;
  cfg.topology.num_as = 60;
  cfg.cost = CostModel::Simulator();
  // Small leaf sets so overlay routes have intermediate hops even at this
  // node count: SV trees then form multi-level structures as in the paper.
  cfg.overlay.table.leaf_set_half = 2;
  return cfg;
}

class SvFixture : public ::testing::Test {
 protected:
  void Init(int n, uint64_t seed) {
    cluster_ = std::make_unique<SimCluster>(SmallConfig(n, seed));
    cluster_->Build();
    apps_.resize(n);
    for (int i = 0; i < n; ++i) {
      auto& node = cluster_->node(i);
      apps_[i] = std::make_unique<SvTreeNode>(node.transport(), node.overlay(), node.fuse());
    }
  }

  void SubscribeAndWait(size_t i, const std::string& topic, size_t root) {
    received_[i] = 0;
    apps_[i]->Subscribe(topic, cluster_->RefOf(root),
                        [this, i](const std::string&, uint64_t, const std::vector<uint8_t>&) {
                          received_[i]++;
                        });
    cluster_->sim().RunUntilCondition([&] { return apps_[i]->HasUplink(topic); },
                                      cluster_->sim().Now() + Duration::Minutes(5));
    ASSERT_TRUE(apps_[i]->HasUplink(topic)) << "subscriber " << i << " failed to link";
  }

  // Lets in-flight LinkNotify messages land so parents know their children
  // before anything is published.
  void SettleLinks() { cluster_->sim().RunFor(Duration::Seconds(30)); }

  std::unique_ptr<SimCluster> cluster_;
  std::vector<std::unique_ptr<SvTreeNode>> apps_;
  std::map<size_t, int> received_;
};

TEST_F(SvFixture, PublishReachesAllSubscribers) {
  Init(32, 201);
  const std::string topic = "news";
  apps_[0]->CreateTopic(topic);
  std::vector<size_t> subs{3, 9, 17, 25, 30};
  for (size_t s : subs) {
    SubscribeAndWait(s, topic, 0);
  }
  SettleLinks();
  for (int k = 0; k < 5; ++k) {
    apps_[0]->Publish(topic, {1, 2, 3});
  }
  cluster_->sim().RunFor(Duration::Minutes(1));
  for (size_t s : subs) {
    EXPECT_EQ(received_[s], 5) << "subscriber " << s;
  }
}

TEST_F(SvFixture, ContentRoutesThroughSubscriberParents) {
  Init(32, 202);
  const std::string topic = "t";
  // Root at the highest name: clockwise subscriptions from low-named
  // subscribers then pass through one another and get intercepted.
  const size_t root = 31;
  apps_[root]->CreateTopic(topic);
  // Subscribe in descending name order so earlier subscribers sit on the
  // clockwise overlay paths of later ones and intercept them.
  std::vector<size_t> subs;
  for (size_t s = 19; s >= 1; --s) {
    subs.push_back(s);
    SubscribeAndWait(s, topic, root);
  }
  SettleLinks();
  size_t with_children = 0;
  for (size_t s : subs) {
    if (apps_[s]->NumChildren(topic) > 0) {
      ++with_children;
    }
  }
  apps_[root]->Publish(topic, {9});
  cluster_->sim().RunFor(Duration::Minutes(1));
  for (size_t s : subs) {
    EXPECT_EQ(received_[s], 1) << "subscriber " << s;
  }
  EXPECT_GT(with_children, 0u) << "tree degenerated to a star at the root";
}

TEST_F(SvFixture, ParentCrashTriggersResubscribeViaFuse) {
  Init(32, 203);
  const std::string topic = "t";
  const size_t root = 31;
  apps_[root]->CreateTopic(topic);
  for (size_t s = 15; s >= 1; --s) {
    SubscribeAndWait(s, topic, root);
  }
  SettleLinks();
  // Find a subscriber whose parent is another subscriber; crash the parent.
  size_t child = SIZE_MAX, parent = SIZE_MAX;
  for (size_t s = 1; s < 16 && child == SIZE_MAX; ++s) {
    if (apps_[s]->NumChildren(topic) > 0) {
      parent = s;
      for (size_t c = 1; c < 16; ++c) {
        if (c != s && apps_[c]->HasUplink(topic)) {
          // Identify parentage indirectly: crash s and see who re-links.
        }
      }
      break;
    }
  }
  ASSERT_NE(parent, SIZE_MAX) << "no subscriber-parent found";
  apps_[parent]->Shutdown();  // app goes away with its node
  cluster_->Crash(parent);
  cluster_->sim().RunFor(Duration::Minutes(8));
  // All other subscribers must have live uplinks again (repaired via FUSE
  // notification + version-stamped resubscribe).
  for (size_t s = 1; s < 16; ++s) {
    if (s == parent) {
      continue;
    }
    EXPECT_TRUE(apps_[s]->HasUplink(topic)) << "subscriber " << s << " did not re-link";
  }
  // And content still flows to everyone.
  apps_[root]->Publish(topic, {7});
  cluster_->sim().RunFor(Duration::Minutes(1));
  for (size_t s = 1; s < 16; ++s) {
    if (s == parent) {
      continue;
    }
    EXPECT_GE(received_[s], 1) << "subscriber " << s;
  }
}

TEST_F(SvFixture, VoluntaryLeaveRepairsTree) {
  Init(32, 204);
  const std::string topic = "t";
  const size_t root = 31;
  apps_[root]->CreateTopic(topic);
  for (size_t s = 19; s >= 1; --s) {
    SubscribeAndWait(s, topic, root);
  }
  SettleLinks();
  // Pick a parent with children and have it leave voluntarily.
  size_t leaver = SIZE_MAX;
  for (size_t s = 1; s < 20; ++s) {
    if (apps_[s]->NumChildren(topic) > 0) {
      leaver = s;
      break;
    }
  }
  ASSERT_NE(leaver, SIZE_MAX);
  apps_[leaver]->Unsubscribe(topic);
  cluster_->sim().RunFor(Duration::Minutes(5));
  for (size_t s = 1; s < 20; ++s) {
    if (s == leaver) {
      EXPECT_FALSE(apps_[s]->HasUplink(topic));
      continue;
    }
    EXPECT_TRUE(apps_[s]->HasUplink(topic)) << "subscriber " << s;
  }
  // Content resumes; the leaver receives nothing new.
  const int before = received_[leaver];
  apps_[root]->Publish(topic, {1});
  cluster_->sim().RunFor(Duration::Minutes(1));
  for (size_t s = 1; s < 20; ++s) {
    if (s == leaver) {
      EXPECT_EQ(received_[s], before);
    } else {
      EXPECT_GE(received_[s], 1) << "subscriber " << s;
    }
  }
}

TEST_F(SvFixture, GroupSizesAreSmall) {
  // Paper section 4: FUSE groups for SV-tree links average ~2.9 members with
  // small maxima — groups are link-scoped, not tree-scoped.
  Init(48, 205);
  const std::string topic = "t";
  apps_[0]->CreateTopic(topic);
  for (size_t s = 1; s < 40; ++s) {
    SubscribeAndWait(s, topic, 0);
  }
  int total = 0, count = 0, max = 0;
  for (size_t s = 1; s < 40; ++s) {
    for (int size : apps_[s]->stats().group_sizes) {
      total += size;
      max = std::max(max, size);
      ++count;
    }
  }
  ASSERT_GT(count, 0);
  const double avg = static_cast<double>(total) / count;
  EXPECT_LT(avg, 6.0);
  EXPECT_GE(avg, 2.0);
  EXPECT_LE(max, 16);
}

TEST_F(SvFixture, DuplicateContentSuppressed) {
  Init(16, 206);
  const std::string topic = "t";
  apps_[0]->CreateTopic(topic);
  SubscribeAndWait(3, topic, 0);
  SettleLinks();
  apps_[0]->Publish(topic, {1});
  apps_[0]->Publish(topic, {2});
  cluster_->sim().RunFor(Duration::Minutes(1));
  EXPECT_EQ(received_[3], 2);
}

}  // namespace
}  // namespace fuse
