// Datagram reliability-layer semantics, tested fabric-to-fabric over real
// loopback UDP sockets on one LiveRuntime loop. Where the parity suites show
// the protocol stack survives the transport swap, these pin the transport's
// own contract: duplicate deliveries are suppressed (and re-acked), records
// reorder freely across coalesced batch boundaries without breaking
// exactly-once delivery, a lost ack and a lost data record are
// distinguishable only by outcome (Ok after heal vs kBroken after retransmit
// exhaustion — both are *silence* on the wire), and a loss burst clamps the
// congestion window instead of amplifying load. Faults come from the seeded
// FaultInjector replica, so every run draws the same losses.
#include <gtest/gtest.h>

#if defined(__linux__)

#include <chrono>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>

#include "common/serialize.h"
#include "runtime/live_runtime.h"
#include "transport/datagram_transport.h"
#include "transport/peer_address_map.h"

namespace fuse {
namespace {

// Two datagram fabrics on one loop, linked both ways — the smallest topology
// where data and acks cross real sockets. Faults are per-fabric, like the
// per-worker rule replicas in the process deployment: a_ rules govern what A
// transmits, b_ rules govern what B delivers and acks.
class DatagramPair {
 public:
  DatagramPair(DatagramFabric::Options oa, DatagramFabric::Options ob)
      : rt_(RuntimeConfig()) {
    rt_.RunOnLoop([&] {
      a_ = std::make_unique<DatagramFabric>(&rt_, oa);
      b_ = std::make_unique<DatagramFabric>(&rt_, ob);
      const uint16_t pa = a_->Listen();
      const uint16_t pb = b_->Listen();
      a_->SetPeerAddr(hb_, pb);
      b_->SetPeerAddr(ha_, pa);
      ta_ = a_->TransportFor(ha_);
      tb_ = b_->TransportFor(hb_);
    });
  }

  ~DatagramPair() { rt_.Stop(); }  // quiesce the loop before fabric teardown

  // Marshals `fn` onto the loop thread (all fabric access happens there).
  void Run(const std::function<void()>& fn) { rt_.RunOnLoop(fn); }

  // Polls `pred` on the loop thread until true or the bound expires.
  bool Await(const std::function<bool()>& pred, Duration bound) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::microseconds(bound.ToMicros());
    for (;;) {
      bool ok = false;
      rt_.RunOnLoop([&] { ok = pred(); });
      if (ok) {
        return true;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  LiveRuntime& rt() { return rt_; }
  DatagramFabric& a() { return *a_; }
  DatagramFabric& b() { return *b_; }
  Transport* ta() { return ta_; }
  Transport* tb() { return tb_; }  // binds hb as local; delivery needs it
  HostId ha() const { return ha_; }
  HostId hb() const { return hb_; }

  // Sends one kTest message A->B with a u32 index payload.
  void SendIndexed(uint32_t index, Transport::SendCallback cb) {
    Run([&] {
      WireMessage m;
      m.to = hb_;
      m.type = msgtype::kTest;
      m.category = MsgCategory::kApp;
      Writer w;
      w.PutU32(index);
      m.payload = w.Take();
      ta_->Send(std::move(m), std::move(cb));
    });
  }

 private:
  static LiveRuntime::Config RuntimeConfig() {
    LiveRuntime::Config cfg;
    cfg.seed = 7;
    return cfg;
  }

  LiveRuntime rt_;
  std::unique_ptr<DatagramFabric> a_;
  std::unique_ptr<DatagramFabric> b_;
  Transport* ta_ = nullptr;
  Transport* tb_ = nullptr;
  HostId ha_{1};
  HostId hb_{2};
};

DatagramFabric::Options FastRto() {
  DatagramFabric::Options o;
  o.rto_initial = Duration::Millis(5);
  o.rto_max = Duration::Millis(20);
  return o;
}

// A lost ack must not produce a duplicate delivery: the receiver suppresses
// the retransmit by sequence watermark, re-acks it, and once the reverse
// path heals the sender's callback completes Ok — the app never learns the
// first ack died.
TEST(DatagramSemantics, DuplicateDeliverySuppressedWhenAcksLost) {
  DatagramFabric::Options oa = FastRto();
  oa.max_retransmits = 200;  // must not exhaust before the heal below
  DatagramPair pair(oa, FastRto());

  int delivered = 0;
  bool acked = false;
  Status status = Status::Ok();
  pair.Run([&] {
    pair.b().RegisterHandler(pair.hb(), msgtype::kTest, [&](const WireMessage&) { ++delivered; });
    // Silence on the reverse path only: data flows, acks evaporate.
    pair.b().faults().BlockOneWay(pair.hb(), pair.ha());
  });
  pair.SendIndexed(0, [&](const Status& s) {
    status = s;
    acked = true;
  });

  // The record arrives, retransmits arrive again, and the receiver suppresses
  // every copy after the first.
  ASSERT_TRUE(pair.Await([&] { return delivered >= 1; }, Duration::Seconds(5)));
  ASSERT_TRUE(pair.Await(
      [&] { return pair.rt().metrics().GetCounter(Counter::kAcksDedupedTotal) >= 2; },
      Duration::Seconds(5)))
      << "retransmits were not suppressed as duplicates";
  bool acked_now = true;
  pair.Run([&] { acked_now = acked; });
  EXPECT_FALSE(acked_now) << "sender saw an ack that was supposed to be dropped";

  // Heal the reverse path: a re-ack of the suppressed duplicate completes
  // the original send.
  pair.Run([&] { pair.b().faults().UnblockOneWay(pair.hb(), pair.ha()); });
  ASSERT_TRUE(pair.Await([&] { return acked; }, Duration::Seconds(5)));
  EXPECT_TRUE(status.ok()) << status.ToString();

  int final_delivered = 0;
  pair.Run([&] { final_delivered = delivered; });
  EXPECT_EQ(final_delivered, 1) << "duplicate retransmits reached the handler";
}

// A lost data record is pure silence: no error signal, no delivery — the
// callback reports kBroken only after the retransmit budget exhausts, which
// is how a SIGKILLed peer is observed on this transport.
TEST(DatagramSemantics, DataLostIsSilenceThenRetransmitExhaustion) {
  DatagramFabric::Options oa = FastRto();
  oa.max_retransmits = 3;
  DatagramPair pair(oa, FastRto());

  int delivered = 0;
  bool done = false;
  Status status = Status::Ok();
  pair.Run([&] {
    pair.b().RegisterHandler(pair.hb(), msgtype::kTest, [&](const WireMessage&) { ++delivered; });
    // Silence on the forward path: the record is dropped at pack time.
    pair.a().faults().BlockOneWay(pair.ha(), pair.hb());
  });
  pair.SendIndexed(0, [&](const Status& s) {
    status = s;
    done = true;
  });

  ASSERT_TRUE(pair.Await([&] { return done; }, Duration::Seconds(10)));
  EXPECT_FALSE(status.ok()) << "a never-delivered record must not ack Ok";
  EXPECT_NE(status.ToString().find("retransmit"), std::string::npos)
      << "failure must name retransmit exhaustion, got: " << status.ToString();
  int final_delivered = 0;
  uint64_t broken = 0;
  pair.Run([&] {
    final_delivered = delivered;
    broken = pair.a().debug_stats().broken_sends;
  });
  EXPECT_EQ(final_delivered, 0);
  EXPECT_EQ(broken, 1u);
}

// Reordering across coalesced batch boundaries: with reorder jitter some
// records ride delayed solo datagrams while the rest stay in coalesced
// batches, so arrival order scrambles relative to send order. Delivery must
// stay exactly-once for every record regardless.
TEST(DatagramSemantics, ReorderAcrossBatchBoundaryDeliversExactlyOnce) {
  constexpr uint32_t kMessages = 200;
  DatagramFabric::Options oa = FastRto();
  oa.max_retransmits = 200;
  DatagramPair pair(oa, FastRto());

  std::set<uint32_t> seen;
  int dups = 0;
  int acked = 0;
  pair.Run([&] {
    pair.b().RegisterHandler(pair.hb(), msgtype::kTest, [&](const WireMessage& m) {
      Reader r(m.payload.data(), m.payload.size());
      const uint32_t idx = r.GetU32();
      if (!seen.insert(idx).second) {
        ++dups;
      }
    });
    // Up to 2 ms of per-record jitter on everything A transmits.
    pair.a().faults().SetReorderJitter(pair.ha(), Duration::Millis(2));
  });
  for (uint32_t i = 0; i < kMessages; ++i) {
    pair.SendIndexed(i, [&acked](const Status& s) {
      ASSERT_TRUE(s.ok()) << s.ToString();
      ++acked;
    });
  }

  ASSERT_TRUE(pair.Await(
      [&] { return seen.size() == kMessages && acked == static_cast<int>(kMessages); },
      Duration::Seconds(20)))
      << "delivered " << seen.size() << ", acked " << acked;
  int final_dups = -1;
  pair.Run([&] { final_dups = dups; });
  EXPECT_EQ(final_dups, 0) << "reordered retransmit races leaked duplicates to the handler";
}

// A 50% loss burst must clamp the congestion window (multiplicative
// decrease, floor cwnd_min) while the retransmit layer recovers every
// record exactly once after the burst passes.
TEST(DatagramSemantics, CongestionWindowClampsUnderLossBurst) {
  constexpr uint32_t kMessages = 300;
  DatagramFabric::Options oa = FastRto();
  oa.max_retransmits = 12;  // survive repeated 50% drops of the same record
  DatagramPair pair(oa, FastRto());

  std::set<uint32_t> seen;
  int dups = 0;
  int acked = 0;
  pair.Run([&] {
    pair.b().RegisterHandler(pair.hb(), msgtype::kTest, [&](const WireMessage& m) {
      Reader r(m.payload.data(), m.payload.size());
      if (!seen.insert(r.GetU32()).second) {
        ++dups;
      }
    });
    const TimePoint now = pair.rt().Now();
    pair.a().faults().AddLossBurst(pair.ha(), now, now + Duration::Millis(500), 0.5);
  });
  for (uint32_t i = 0; i < kMessages; ++i) {
    pair.SendIndexed(i, [&acked](const Status& s) {
      ASSERT_TRUE(s.ok()) << s.ToString();
      ++acked;
    });
  }

  ASSERT_TRUE(pair.Await(
      [&] { return seen.size() == kMessages && acked == static_cast<int>(kMessages); },
      Duration::Seconds(30)))
      << "delivered " << seen.size() << ", acked " << acked;

  DatagramFabric::DebugStats stats;
  int final_dups = -1;
  uint64_t retransmit_counter = 0;
  pair.Run([&] {
    stats = pair.a().debug_stats();
    final_dups = dups;
    retransmit_counter = pair.rt().metrics().GetCounter(Counter::kRetransmitsTotal);
  });
  EXPECT_EQ(final_dups, 0);
  EXPECT_GT(stats.retransmits, 0u) << "a 50% burst must force retransmits";
  DatagramFabric::Options defaults;
  EXPECT_LE(stats.max_inflight, uint64_t{defaults.cwnd_max})
      << "congestion restraint failed to bound unacked records in flight";
  EXPECT_LT(stats.min_cwnd, defaults.cwnd_max) << "the window was never clamped";
  EXPECT_GE(stats.min_cwnd, defaults.cwnd_min);
  EXPECT_GT(retransmit_counter, 0u);
}

// Address-map churn retargets traffic already in flight. A record is sent to
// a dead incarnation of the destination host (its fabric drops everything for
// the killed host without acking — exactly what a SIGKILLed worker looks like
// on this transport), retransmits accumulate against that stale endpoint, and
// then the restarted incarnation advertises a fresh port via SetPeerAddr.
// Because the fabric resolves endpoints at transmit time — not enqueue time —
// the pending retransmits retarget on their next tick and the original send
// completes Ok with exactly one delivery, at the new endpoint.
TEST(DatagramSemantics, SetPeerAddrRetargetsInFlightRetransmits) {
  LiveRuntime::Config rcfg;
  rcfg.seed = 7;
  LiveRuntime rt(rcfg);
  const HostId ha{1};
  const HostId hb{2};
  std::unique_ptr<DatagramFabric> a;
  std::unique_ptr<DatagramFabric> b_dead;  // first incarnation of hb
  std::unique_ptr<DatagramFabric> b_new;   // restarted incarnation, new port
  Transport* ta = nullptr;
  uint16_t port_new = 0;
  int delivered = 0;
  rt.RunOnLoop([&] {
    DatagramFabric::Options oa = FastRto();
    oa.max_retransmits = 500;  // must not exhaust during the dead window
    a = std::make_unique<DatagramFabric>(&rt, oa);
    b_dead = std::make_unique<DatagramFabric>(&rt, FastRto());
    b_new = std::make_unique<DatagramFabric>(&rt, FastRto());
    const uint16_t port_a = a->Listen();
    const uint16_t port_dead = b_dead->Listen();
    port_new = b_new->Listen();
    // The dead incarnation: hb was bound here, then in-place killed — its
    // handlers are gone and the fault replica marks the host down, so
    // arriving records are dropped without an ack.
    b_dead->TransportFor(hb);
    b_dead->faults().SetHostDown(hb, true);
    // The restarted incarnation delivers and acks normally.
    b_new->TransportFor(hb);
    b_new->RegisterHandler(hb, msgtype::kTest, [&](const WireMessage&) { ++delivered; });
    b_new->SetPeerAddr(ha, port_a);
    // The sender still believes hb lives at the dead incarnation's port.
    a->SetPeerAddr(hb, port_dead);
    ta = a->TransportFor(ha);
  });
  auto await = [&](const std::function<bool()>& pred, Duration bound) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::microseconds(bound.ToMicros());
    for (;;) {
      bool ok = false;
      rt.RunOnLoop([&] { ok = pred(); });
      if (ok) {
        return true;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  };

  bool acked = false;
  Status status = Status::Broken("unset");
  rt.RunOnLoop([&] {
    WireMessage m;
    m.to = hb;
    m.type = msgtype::kTest;
    m.category = MsgCategory::kApp;
    Writer w;
    w.PutU32(0);
    m.payload = w.Take();
    ta->Send(std::move(m), [&](const Status& s) {
      status = s;
      acked = true;
    });
  });

  // Retransmits pile up against the dead endpoint: silence, no ack.
  const bool saw_retransmits =
      await([&] { return a->debug_stats().retransmits >= 2; }, Duration::Seconds(10));
  bool acked_early = true;
  rt.RunOnLoop([&] { acked_early = acked; });

  // The fresh incarnation re-advertises: one map edit, no new Send calls.
  rt.RunOnLoop([&] { a->SetPeerAddr(hb, port_new); });
  const bool completed =
      await([&] { return acked && delivered >= 1; }, Duration::Seconds(10));

  int final_delivered = 0;
  rt.RunOnLoop([&] { final_delivered = delivered; });
  rt.Stop();  // quiesce before fabric teardown and before reading `status`
  ASSERT_TRUE(saw_retransmits) << "no retransmits against the dead endpoint";
  EXPECT_FALSE(acked_early) << "send acked while pointed at the dead incarnation";
  ASSERT_TRUE(completed) << "retransmits never retargeted to the new endpoint";
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(final_delivered, 1) << "retargeting duplicated the delivery";
}

// The deployment-facing text format behind multi-host address maps:
// `<host-id> <a.b.c.d>:<port>` lines, the bare-port loopback shorthand, and
// `#` comments must round-trip through ToText/FromText, and parse errors must
// name the offending line without discarding entries merged so far.
TEST(PeerAddressMapText, RoundTripShorthandAndErrors) {
  PeerAddressMap m;
  std::string err;
  ASSERT_TRUE(m.FromText("# deployment map\n"
                         "0 10.1.2.3:9000\n"
                         "1 9001\n"  // loopback shorthand
                         "\n"
                         "7 10.1.2.4:9000  # trailing comment\n",
                         &err))
      << err;
  ASSERT_EQ(m.size(), 3u);
  ASSERT_TRUE(m.Contains(HostId(0)));
  EXPECT_EQ(m.Find(HostId(0))->ToString(), "10.1.2.3:9000");
  EXPECT_EQ(*m.Find(HostId(1)), PeerEndpoint::Loopback(9001));
  EXPECT_EQ(m.Find(HostId(7))->ToString(), "10.1.2.4:9000");

  // Round trip: text -> map -> text -> map preserves every entry.
  PeerAddressMap again;
  ASSERT_TRUE(again.FromText(m.ToText(), &err)) << err;
  EXPECT_EQ(again.size(), m.size());
  for (const auto& [host, ep] : m.entries()) {
    const PeerEndpoint* found = again.Find(HostId(host));
    ASSERT_NE(found, nullptr) << "host " << host << " lost in round trip";
    EXPECT_EQ(*found, ep);
  }

  // A malformed line is reported by content, and earlier lines still merged.
  PeerAddressMap partial;
  EXPECT_FALSE(partial.FromText("3 9003\nbogus line here\n", &err));
  EXPECT_NE(err.find("bogus"), std::string::npos) << err;
  EXPECT_TRUE(partial.Contains(HostId(3)));

  // FromText merges (last write wins) and bumps the version on real change.
  const uint64_t v = m.version();
  ASSERT_TRUE(m.FromText("1 10.9.9.9:4242\n", &err)) << err;
  EXPECT_GT(m.version(), v);
  EXPECT_EQ(m.Find(HostId(1))->ToString(), "10.9.9.9:4242");
}

}  // namespace
}  // namespace fuse

#else
// Non-Linux: the datagram fabric is not built; keep the binary linkable.
TEST(DatagramSemantics, SkippedOffLinux) { GTEST_SKIP(); }
#endif  // defined(__linux__)
