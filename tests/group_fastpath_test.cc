// Group fast-path tests (FuseParams::incremental_link_digest /
// coalesce_group_timers) and the GroupService facade.
//
// The digest mode's contract is exact equivalence: the maintained
// XOR-of-SHA1 digest is 20 bytes like the classic recomputed hash, so the
// same schedule must produce byte-identical fuzz log lines. The coalesced
// mode's contract is behavioral: detection may lag the classic per-link
// timers by up to one sweep rescan, so verdicts must stay green but timing
// may shift — which is why the two flags gate independently.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "common/rng.h"
#include "fuzz/fault_schedule.h"
#include "fuzz/fuzz_runner.h"
#include "runtime/sim_cluster.h"
#include "service/group_service.h"

namespace fuse {
namespace {

ClusterConfig FastPathConfig(int n, uint64_t seed, bool digest, bool coalesce) {
  ClusterConfig cfg;
  cfg.num_nodes = n;
  cfg.seed = seed;
  cfg.topology.num_as = 60;
  cfg.cost = CostModel::Simulator();
  cfg.fuse.incremental_link_digest = digest;
  cfg.fuse.coalesce_group_timers = coalesce;
  return cfg;
}

FuseId CreateGroupSync(SimCluster& cluster, size_t root, const std::vector<size_t>& members,
                       Status* status_out) {
  FuseId id;
  bool done = false;
  Status status;
  cluster.node(root).fuse()->CreateGroup(cluster.RefsOf(members),
                                         [&](const Status& s, FuseId gid) {
                                           status = s;
                                           id = gid;
                                           done = true;
                                         });
  cluster.sim().RunUntilCondition([&] { return done; },
                                  cluster.sim().Now() + Duration::Minutes(3));
  EXPECT_TRUE(done) << "CreateGroup callback never fired";
  if (status_out != nullptr) {
    *status_out = status;
  }
  return id;
}

void ExpectDigestsVerify(SimCluster& cluster) {
  for (size_t i = 0; i < cluster.size(); ++i) {
    if (cluster.IsUp(i)) {
      EXPECT_TRUE(cluster.node(i).fuse()->DebugVerifyLinkDigests()) << "node " << i;
    }
  }
}

// Oracle test for the incremental digest: after arbitrary interleavings of
// group creation, explicit signals, crashes, and repair traffic, every
// node's maintained per-peer digest must equal a from-scratch recompute of
// XOR(SHA-1(id)) over its live link set.
TEST(IncrementalDigestTest, MatchesRecomputeUnderRandomChurn) {
  SimCluster cluster(FastPathConfig(12, 501, /*digest=*/true, /*coalesce=*/false));
  cluster.Build();
  Rng rng(0xd1685u);
  std::vector<FuseId> live;
  for (int round = 0; round < 30; ++round) {
    const int op = static_cast<int>(rng.UniformInt(0, 3));
    if (op <= 1 || live.empty()) {
      const size_t size = static_cast<size_t>(rng.UniformInt(2, 4));
      const auto members = cluster.PickLiveNodes(size);
      Status status;
      const FuseId id = CreateGroupSync(cluster, members[0], members, &status);
      if (status.ok()) {
        live.push_back(id);
      }
    } else {
      const size_t pick = static_cast<size_t>(rng.UniformInt(0, live.size() - 1));
      const FuseId id = live[pick];
      live.erase(live.begin() + static_cast<long>(pick));
      const auto signalers = cluster.PickLiveNodes(1);
      cluster.node(signalers[0]).fuse()->SignalFailure(id);
    }
    cluster.sim().RunFor(Duration::Seconds(5));
    ExpectDigestsVerify(cluster);
  }
  // A crash exercises the teardown + repair paths' digest maintenance.
  cluster.Crash(3);
  cluster.sim().RunFor(Duration::Minutes(5));
  ExpectDigestsVerify(cluster);
}

// The digest changes which bytes ride the pings but not how many, so the
// whole fuzz-oracle run — verdict, QoS counters, detection latencies, all
// folded into the deterministic log line — must match classic byte-for-byte.
TEST(IncrementalDigestTest, FuzzLogLinesMatchClassicByteForByte) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    const FaultSchedule s = GenerateSchedule(seed);
    FuzzRunOptions classic;
    FuzzRunOptions digest;
    digest.incremental_link_digest = true;
    const FuzzRunResult rc = RunSchedule(s, classic);
    const FuzzRunResult rd = RunSchedule(s, digest);
    EXPECT_EQ(rc.log_line, rd.log_line) << "seed " << seed;
    EXPECT_EQ(rc.violations, rd.violations) << "seed " << seed;
  }
}

// Coalesced mode keeps the oracle green: timing may shift by a sweep rescan,
// which is within the oracle's detection windows.
TEST(CoalescedTimersTest, FuzzVerdictsStayGreen) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    const FaultSchedule s = GenerateSchedule(seed);
    FuzzRunOptions opts;
    opts.incremental_link_digest = true;
    opts.coalesce_group_timers = true;
    const FuzzRunResult r = RunSchedule(s, opts);
    EXPECT_TRUE(r.ok()) << "seed " << seed << ": " << r.log_line;
  }
}

// The coalescing claim itself: armed FUSE timers stay O(nodes) no matter how
// many groups exist, and a real crash is still detected by every surviving
// member exactly once.
TEST(CoalescedTimersTest, ArmedTimersStayFlatAndCrashIsDetected) {
  SimCluster cluster(FastPathConfig(16, 502, /*digest=*/true, /*coalesce=*/true));
  cluster.Build();

  struct Group {
    FuseId id;
    std::vector<size_t> members;
  };
  std::vector<Group> groups;
  for (int g = 0; g < 60; ++g) {
    const auto members = cluster.PickLiveNodes(3);
    Status status;
    const FuseId id = CreateGroupSync(cluster, members[0], members, &status);
    ASSERT_TRUE(status.ok());
    groups.push_back({id, members});
  }
  cluster.sim().RunFor(Duration::Minutes(2));

  size_t armed = 0;
  size_t live_groups = 0;
  for (size_t i = 0; i < cluster.size(); ++i) {
    armed += cluster.node(i).fuse()->CountArmedGroupTimers();
    live_groups += cluster.node(i).fuse()->NumLiveGroups();
  }
  // 60 groups x 3 members (plus delegates) hold hundreds of group records;
  // classic mode arms 2+ timers per (group, link). Coalesced: at most the
  // one sweep timer per node plus transient repair state.
  EXPECT_GE(live_groups, 180u);
  EXPECT_LE(armed, 2 * cluster.size()) << "timers not coalesced";

  // A member can sit in several affected groups, so firings are counted per
  // (group, member) pair: exactly one notification for each.
  const size_t victim = groups[0].members[1];
  std::map<std::pair<size_t, size_t>, int> fired;
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    const Group& g = groups[gi];
    bool affected = false;
    for (size_t m : g.members) {
      affected = affected || m == victim;
    }
    if (!affected) {
      continue;
    }
    for (size_t m : g.members) {
      if (m == victim) {
        continue;
      }
      cluster.node(m).fuse()->RegisterFailureHandler(
          g.id, [&fired, gi, m](FuseId) { fired[{gi, m}]++; });
    }
  }
  ASSERT_FALSE(fired.empty() && groups.empty());
  cluster.Crash(victim);
  cluster.sim().RunFor(Duration::Minutes(8));
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    const Group& g = groups[gi];
    bool affected = false;
    for (size_t m : g.members) {
      affected = affected || m == victim;
    }
    for (size_t m : g.members) {
      if (!affected || m == victim) {
        continue;
      }
      EXPECT_EQ((fired[{gi, m}]), 1) << "group " << gi << " member " << m;
    }
  }
}

// After every group is gone the sweep disarms itself: a node with no
// monitored links holds zero armed FUSE timers.
TEST(CoalescedTimersTest, SweepDisarmsWhenIdle) {
  SimCluster cluster(FastPathConfig(10, 503, /*digest=*/true, /*coalesce=*/true));
  cluster.Build();
  std::vector<FuseId> ids;
  std::vector<std::vector<size_t>> member_sets;
  for (int g = 0; g < 10; ++g) {
    const auto members = cluster.PickLiveNodes(2);
    Status status;
    const FuseId id = CreateGroupSync(cluster, members[0], members, &status);
    ASSERT_TRUE(status.ok());
    ids.push_back(id);
    member_sets.push_back(members);
  }
  cluster.sim().RunFor(Duration::Minutes(1));
  for (size_t g = 0; g < ids.size(); ++g) {
    cluster.node(member_sets[g][0]).fuse()->SignalFailure(ids[g]);
  }
  // Long enough for every teardown to propagate and the armed sweeps to fire
  // once into empty peer tables.
  cluster.sim().RunFor(Duration::Minutes(5));
  for (size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_EQ(cluster.node(i).fuse()->NumLiveGroups(), 0u) << "node " << i;
    EXPECT_EQ(cluster.node(i).fuse()->CountArmedGroupTimers(), 0u) << "node " << i;
  }
}

TEST(GroupServiceTest, CreateDrainWatchSignalRoundTrip) {
  SimCluster cluster(FastPathConfig(8, 504, /*digest=*/true, /*coalesce=*/true));
  cluster.Build();
  GroupServiceOptions opts;
  opts.max_inflight_creates = 64;
  GroupService svc(cluster, opts);

  for (int g = 0; g < 200; ++g) {
    svc.Create(static_cast<size_t>(g % 8),
               {static_cast<size_t>(g % 8), static_cast<size_t>((g + 1 + g / 8) % 8)});
  }
  ASSERT_TRUE(svc.Drain(Duration::Minutes(10)));
  EXPECT_EQ(svc.counters().creates_ok, 200u);
  EXPECT_EQ(svc.counters().creates_failed, 0u);
  EXPECT_EQ(svc.NumLive(), 200u);

  // Signal a quarter of them from their roots; each watched member hears
  // exactly once and the record disappears from the live view.
  std::vector<FuseId> doomed;
  svc.ForEachLive([&](FuseId id, const GroupService::Record&) {
    if (doomed.size() < 50) {
      doomed.push_back(id);
    }
  });
  int fires = 0;
  for (const FuseId& id : doomed) {
    const GroupService::Record* rec = svc.FindLive(id);
    ASSERT_NE(rec, nullptr);
    svc.Watch(rec->members[1], id, [&fires](FuseId) { ++fires; });
    svc.Signal(rec->root, id);
  }
  cluster.Await([&] { return fires >= 50; }, Duration::Minutes(5));
  EXPECT_EQ(fires, 50);
  EXPECT_EQ(svc.counters().notifications, 50u);
  EXPECT_EQ(svc.NumLive(), 150u);
  for (const FuseId& id : doomed) {
    EXPECT_EQ(svc.FindLive(id), nullptr);
  }
}

TEST(GroupServiceTest, CreateAgainstCrashedMemberCountsAsFailed) {
  SimCluster cluster(FastPathConfig(8, 505, /*digest=*/true, /*coalesce=*/true));
  cluster.Build();
  cluster.Crash(5);
  GroupService svc(cluster);
  svc.Create(0, {0, 5});
  svc.Create(1, {1, 2});
  ASSERT_TRUE(svc.Drain(Duration::Minutes(10)));
  EXPECT_EQ(svc.counters().creates_ok, 1u);
  EXPECT_EQ(svc.counters().creates_failed, 1u);
  EXPECT_EQ(svc.NumLive(), 1u);
}

}  // namespace
}  // namespace fuse
