// Multi-tenant process placement (`procN` ctest label): N nodes per worker
// process, so the worker — not the node — is the machine. These pin the two
// semantics that placement changes: a single-node crash on a shared worker
// is an in-place kill (co-tenants keep running; the process survives), and a
// machine crash is ONE genuine SIGKILL taking down every co-hosted node at
// once. The ProcNParity suite runs the shared scenario definitions
// (runtime/scenario.h) over a 24-nodes-on-4-workers placement on both real
// transports; ProcessClusterMultiNode covers the lifecycle edges (TSan's
// "ProcessCluster" test regex picks up this suite, not the parity sweep).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "runtime/process_cluster.h"
#include "runtime/scenario.h"

#if defined(__linux__)

namespace fuse {
namespace {

ProcessClusterConfig MultiNodeConfig(int num_nodes, int num_workers, uint64_t seed) {
  ProcessClusterConfig cfg = ProcessClusterConfig::FastProtocol(num_nodes, seed);
  cfg.num_workers = num_workers;
  return cfg;
}

ScenarioOptions ProcNOptions(uint64_t seed) {
  ScenarioOptions opts;
  opts.seed = seed;
  opts.num_groups = 3;
  opts.min_group_size = 2;
  opts.max_group_size = 4;
  opts.timing = ScenarioTiming::Live();
  return opts;
}

// (scenario, transport) over 24 nodes packed onto 4 workers: 6 co-hosted
// nodes share each epoll loop, fabric listener, and fault-rule replica, so
// inter-machine traffic multiplexes over 4x4 endpoint-shared connections
// while co-hosted traffic short-circuits through local dispatch.
class ProcNParity
    : public ::testing::TestWithParam<std::tuple<ScenarioKind, TransportKind>> {};

TEST_P(ProcNParity, AgreementHoldsUnderMultiTenantPlacement) {
  const ScenarioKind kind = std::get<0>(GetParam());
  const TransportKind transport = std::get<1>(GetParam());
  ProcessClusterConfig cfg = MultiNodeConfig(/*num_nodes=*/24, /*num_workers=*/4, /*seed=*/42);
  cfg.transport = transport;
  ProcessCluster cluster(cfg);
  cluster.Build();
  ASSERT_EQ(cluster.placement().NumMachines(), 4);
  const ScenarioResult result = RunAgreementScenario(cluster, kind, ProcNOptions(42));
  EXPECT_TRUE(result.ok()) << ScenarioKindName(kind) << " procN: " << result.ToString();
  if (!result.target_skipped) {
    EXPECT_GE(result.notified, 1) << "scenario did not exercise the notification path";
  }

  // Per-machine accounting: one slot per worker, empty for a dead worker
  // (kMachineFailure leaves its victim SIGKILLed), live counters elsewhere.
  const std::vector<std::map<std::string, uint64_t>> by_machine =
      cluster.TransportCountersByMachine();
  ASSERT_EQ(by_machine.size(), 4u);
  int live_machines = 0;
  uint64_t total_sends = 0;
  uint64_t total_datagrams = 0;
  for (size_t m = 0; m < by_machine.size(); ++m) {
    if (by_machine[m].empty()) {
      continue;
    }
    ++live_machines;
    SCOPED_TRACE("machine " + std::to_string(m));
    ASSERT_TRUE(by_machine[m].contains("transport_send_syscalls"));
    EXPECT_GT(by_machine[m].at("transport_send_syscalls"), 0u);
    total_sends += by_machine[m].at("transport_send_syscalls");
    total_datagrams += by_machine[m].at("transport_datagrams_sent");
  }
  EXPECT_GE(live_machines, kind == ScenarioKind::kMachineFailure ? 3 : 4);
  EXPECT_GT(total_sends, 0u);
  if (transport == TransportKind::kUdp) {
    EXPECT_GT(total_datagrams, 0u);
  } else {
    EXPECT_EQ(total_datagrams, 0u);
  }
  // The flat view is exactly the per-machine view, summed.
  const std::map<std::string, uint64_t> flat = cluster.TransportCounters();
  ASSERT_TRUE(flat.contains("transport_send_syscalls"));
  EXPECT_GE(flat.at("transport_send_syscalls"), total_sends > 0 ? 1u : 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, ProcNParity,
    ::testing::Combine(::testing::Values(ScenarioKind::kCrashMember,
                                         ScenarioKind::kPartitionHeal,
                                         ScenarioKind::kMachineFailure),
                       ::testing::Values(TransportKind::kTcp, TransportKind::kUdp)),
    [](const ::testing::TestParamInfo<std::tuple<ScenarioKind, TransportKind>>& pinfo) {
      std::string name = ScenarioKindName(std::get<0>(pinfo.param));
      if (std::get<1>(pinfo.param) == TransportKind::kUdp) {
        name += "Udp";
      }
      return name;
    });

// A single-node crash on a shared worker must NOT kill the process: the
// victim quiesces in place (handlers unregistered, fault rules mark it down)
// while its co-tenants keep serving, and a later Restart rejoins it through
// a live bootstrap on the same worker.
TEST(ProcessClusterMultiNode, InPlaceKillKeepsCoTenantsUpThenRestartRejoins) {
  // 8 nodes on 2 workers: worker 0 hosts nodes 0-3, worker 1 hosts 4-7.
  ProcessCluster cluster(MultiNodeConfig(8, 2, /*seed=*/7));
  cluster.Build();

  cluster.Crash(2);
  bool victim_up = true;
  bool victim_joined = true;
  std::vector<bool> cotenant_up(8, false);
  cluster.Run([&] {
    victim_up = cluster.IsUp(2);
    victim_joined = cluster.IsJoined(2);
    for (size_t i = 0; i < 8; ++i) {
      cotenant_up[i] = cluster.IsUp(i);
    }
  });
  EXPECT_FALSE(victim_up);
  EXPECT_FALSE(victim_joined);
  for (size_t i = 0; i < 8; ++i) {
    if (i != 2) {
      EXPECT_TRUE(cotenant_up[i]) << "in-place kill of node 2 took down node " << i;
    }
  }

  cluster.Restart(2);
  bool rejoined = false;
  cluster.Run([&] { rejoined = cluster.IsJoined(2); });
  EXPECT_TRUE(rejoined) << "in-place-restarted node did not rejoin the overlay";
}

// Machine crash is one genuine SIGKILL: every node on the worker dies at
// once, survivors on the other machine detect it, and RestartMachine forks a
// fresh incarnation (new port, re-advertised address map) whose nodes all
// rejoin. Runs on both transports — the UDP leg is the end-to-end version of
// the fabric-level retransmit-retargeting test (address-map churn after a
// restart must redirect traffic to the fresh incarnation's port).
class ProcessClusterMultiNode : public ::testing::TestWithParam<TransportKind> {};

TEST_P(ProcessClusterMultiNode, MachineSigkillThenRestartMachineRejoins) {
  ProcessClusterConfig cfg = MultiNodeConfig(8, 2, /*seed=*/11);
  cfg.transport = GetParam();
  ProcessCluster cluster(cfg);
  cluster.Build();

  cluster.CrashMachine(1);  // one SIGKILL: nodes 4-7 die together
  std::vector<bool> up(8, false);
  cluster.Run([&] {
    for (size_t i = 0; i < 8; ++i) {
      up[i] = cluster.IsUp(i);
    }
  });
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(up[i], cluster.MachineOf(i) == 0)
        << "node " << i << " on machine " << cluster.MachineOf(i);
  }

  cluster.RestartMachine(1);
  std::vector<bool> joined(8, false);
  cluster.Run([&] {
    for (size_t i = 0; i < 8; ++i) {
      joined[i] = cluster.IsJoined(i);
    }
  });
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(joined[i]) << "node " << i << " not joined after machine restart";
  }

  // Both workers are live again and both moved real traffic.
  const auto by_machine = cluster.TransportCountersByMachine();
  ASSERT_EQ(by_machine.size(), 2u);
  for (size_t m = 0; m < by_machine.size(); ++m) {
    ASSERT_FALSE(by_machine[m].empty()) << "machine " << m << " reported no counters";
    EXPECT_GT(by_machine[m].at("transport_send_syscalls"), 0u) << "machine " << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Transports, ProcessClusterMultiNode,
                         ::testing::Values(TransportKind::kTcp, TransportKind::kUdp),
                         [](const ::testing::TestParamInfo<TransportKind>& pinfo) {
                           return std::string(pinfo.param == TransportKind::kUdp ? "Udp" : "Tcp");
                         });

}  // namespace
}  // namespace fuse

#else
// Non-Linux: ProcessCluster needs fork + epoll; keep the binary linkable.
TEST(ProcessClusterMultiNode, SkippedOffLinux) { GTEST_SKIP(); }
#endif  // defined(__linux__)
