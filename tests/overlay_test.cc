// Tests for SkipNet: id/order helpers, routing table operations, and live
// overlay behavior (join, ring invariants, routing, failure detection).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "overlay/ping_manager.h"
#include "overlay/routing_table.h"
#include "overlay/skipnet_id.h"
#include "runtime/sim_cluster.h"
#include "transport/tcp_model.h"

namespace fuse {
namespace {

TEST(SkipNetIdTest, CwInterval) {
  // Plain interval.
  EXPECT_TRUE(CwInInterval("b", "a", "c"));
  EXPECT_TRUE(CwInInterval("c", "a", "c"));   // inclusive upper end
  EXPECT_FALSE(CwInInterval("a", "a", "c"));  // exclusive lower end
  EXPECT_FALSE(CwInInterval("d", "a", "c"));
  // Wrapping interval (c, a]: everything above c or at/below a.
  EXPECT_TRUE(CwInInterval("d", "c", "a"));
  EXPECT_TRUE(CwInInterval("a", "c", "a"));
  EXPECT_FALSE(CwInInterval("b", "c", "a"));
  // Degenerate: whole ring.
  EXPECT_TRUE(CwInInterval("x", "m", "m"));
}

TEST(SkipNetIdTest, StrictlyBetween) {
  EXPECT_TRUE(CwStrictlyBetween("b", "a", "c"));
  EXPECT_FALSE(CwStrictlyBetween("c", "a", "c"));
  EXPECT_FALSE(CwStrictlyBetween("a", "a", "c"));
}

TEST(SkipNetIdTest, NumericDigits) {
  // Base 8 => 3 bits per digit from the MSB down.
  const NumericId id(0xE4'00'00'00'00'00'00'00ULL);  // 0b111'001'00...
  EXPECT_EQ(id.Digit(0, 3), 7u);
  EXPECT_EQ(id.Digit(1, 3), 1u);
  EXPECT_EQ(id.Digit(2, 3), 0u);
}

TEST(SkipNetIdTest, SharedPrefix) {
  const NumericId a(0xFF00000000000000ULL);
  const NumericId b(0xFF10000000000000ULL);
  EXPECT_TRUE(a.SharesPrefix(b, 0, 3));
  EXPECT_TRUE(a.SharesPrefix(b, 2, 3));   // first 6 bits match
  EXPECT_FALSE(a.SharesPrefix(b, 4, 3));  // differ within first 12 bits
  EXPECT_TRUE(a.SharesPrefix(a, 21, 3));
}

NodeRef Ref(const std::string& name, uint64_t host) { return NodeRef{name, HostId(host)}; }

TEST(RoutingTableTest, LeafSetKeepsNearest) {
  OverlayParams params;
  params.leaf_set_half = 2;
  RoutingTable t("m", params);
  EXPECT_TRUE(t.OfferLeaf(Ref("p", 1)));
  EXPECT_TRUE(t.OfferLeaf(Ref("q", 2)));
  EXPECT_TRUE(t.OfferLeaf(Ref("n", 3)));  // nearer than p and q clockwise
  // cw side ordered nearest-first: n, p (q pushed out).
  ASSERT_EQ(t.leaf_cw().size(), 2u);
  EXPECT_EQ(t.leaf_cw()[0].name, "n");
  EXPECT_EQ(t.leaf_cw()[1].name, "p");
  // The same nodes viewed counterclockwise wrap the other way.
  ASSERT_EQ(t.leaf_ccw().size(), 2u);
  EXPECT_EQ(t.leaf_ccw()[0].name, "q");
}

TEST(RoutingTableTest, OfferLeafRejectsSelfAndDuplicates) {
  OverlayParams params;
  RoutingTable t("m", params);
  EXPECT_FALSE(t.OfferLeaf(Ref("m", 9)));
  EXPECT_TRUE(t.OfferLeaf(Ref("a", 1)));
  EXPECT_FALSE(t.OfferLeaf(Ref("a", 1)));
}

TEST(RoutingTableTest, RemoveHostPurgesEverything) {
  OverlayParams params;
  RoutingTable t("m", params);
  t.OfferLeaf(Ref("a", 1));
  t.OfferLeaf(Ref("b", 2));
  t.SetLevel(1, true, Ref("a", 1));
  EXPECT_TRUE(t.HasNeighbor(HostId(1)));
  EXPECT_TRUE(t.RemoveHost(HostId(1)));
  EXPECT_FALSE(t.HasNeighbor(HostId(1)));
  EXPECT_FALSE(t.level(1).cw.valid());
  EXPECT_FALSE(t.RemoveHost(HostId(1)));
}

TEST(RoutingTableTest, DistinctNeighborsDeduplicated) {
  OverlayParams params;
  RoutingTable t("m", params);
  t.OfferLeaf(Ref("a", 1));
  t.SetLevel(1, true, Ref("a", 1));
  t.SetLevel(2, false, Ref("b", 2));
  EXPECT_EQ(t.DistinctNeighborHosts().size(), 2u);
}

TEST(RoutingTableTest, NextHopGreedy) {
  OverlayParams params;
  RoutingTable t("b", params);
  t.OfferLeaf(Ref("c", 1));
  t.OfferLeaf(Ref("f", 2));
  t.SetLevel(2, true, Ref("k", 3));
  // Toward "z": k makes the most clockwise progress without overshooting.
  auto hop = t.NextHopTowards("z");
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(hop->name, "k");
  // Toward "d": f and k overshoot; c is the only candidate.
  hop = t.NextHopTowards("d");
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(hop->name, "c");
  // Toward exactly "c": deliverable to c.
  hop = t.NextHopTowards("c");
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(hop->name, "c");
  // Self: terminal.
  EXPECT_FALSE(t.NextHopTowards("b").has_value());
}

TEST(RoutingTableTest, NextHopEmptyTable) {
  OverlayParams params;
  RoutingTable t("m", params);
  EXPECT_FALSE(t.NextHopTowards("z").has_value());
}

// --- live overlay tests ---

ClusterConfig SmallConfig(int n, uint64_t seed) {
  ClusterConfig cfg;
  cfg.num_nodes = n;
  cfg.seed = seed;
  cfg.topology.num_as = 60;
  cfg.cost = CostModel::Simulator();
  return cfg;
}

TEST(OverlayClusterTest, BuildsPerfectRing) {
  SimCluster cluster(SmallConfig(32, 5));
  cluster.Build();
  EXPECT_EQ(cluster.CountRingViolations(), 0);
  // Every node has neighbors on both sides.
  for (size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_GE(cluster.node(i).overlay()->NumDistinctNeighbors(), 2u);
  }
}

TEST(OverlayClusterTest, RoutesReachExactDestination) {
  SimCluster cluster(SmallConfig(48, 6));
  cluster.Build();
  auto& sim = cluster.sim();
  int delivered = 0;
  int sent = 0;
  // Register a terminal-upcall counter on every node.
  for (size_t i = 0; i < cluster.size(); ++i) {
    cluster.node(i).overlay()->SetRoutedHandler(
        7, [&delivered](SkipNetNode::RoutedUpcall& u) {
          if (u.at_dest) {
            ++delivered;
          }
          return false;
        });
  }
  for (int trial = 0; trial < 60; ++trial) {
    const auto pick = cluster.PickLiveNodes(2);
    ++sent;
    cluster.node(pick[0]).overlay()->RouteByName(cluster.node(pick[1]).ref().name, 7, {0xaa},
                                                 MsgCategory::kApp);
  }
  sim.RunFor(Duration::Seconds(60));
  EXPECT_EQ(delivered, sent);
}

TEST(OverlayClusterTest, RoutedHopUpcallsSeePrevAndNext) {
  SimCluster cluster(SmallConfig(40, 7));
  cluster.Build();
  int bad = 0;
  int final_count = 0;
  for (size_t i = 0; i < cluster.size(); ++i) {
    cluster.node(i).overlay()->SetRoutedHandler(
        9, [&](SkipNetNode::RoutedUpcall& u) {
          if (u.at_dest) {
            ++final_count;
            if (u.next_hop.valid()) {
              ++bad;  // terminal nodes must have no next hop
            }
          } else {
            if (!u.next_hop.valid() && u.hop_index > 0) {
              ++bad;  // stalled mid-route in a healthy overlay
            }
          }
          return false;
        });
  }
  const auto pick = cluster.PickLiveNodes(2);
  cluster.node(pick[0]).overlay()->RouteByName(cluster.node(pick[1]).ref().name, 9, {},
                                               MsgCategory::kApp);
  cluster.sim().RunFor(Duration::Seconds(30));
  EXPECT_EQ(final_count, 1);
  EXPECT_EQ(bad, 0);
}

TEST(OverlayClusterTest, RoutingIsLogarithmic) {
  SimCluster cluster(SmallConfig(64, 8));
  cluster.Build();
  int max_hops = 0;
  for (size_t i = 0; i < cluster.size(); ++i) {
    cluster.node(i).overlay()->SetRoutedHandler(
        3, [&](SkipNetNode::RoutedUpcall& u) {
          if (u.at_dest && u.hop_index > max_hops) {
            max_hops = u.hop_index;
          }
          return false;
        });
  }
  for (int trial = 0; trial < 40; ++trial) {
    const auto pick = cluster.PickLiveNodes(2);
    cluster.node(pick[0]).overlay()->RouteByName(cluster.node(pick[1]).ref().name, 3, {},
                                                 MsgCategory::kApp);
  }
  cluster.sim().RunFor(Duration::Seconds(60));
  // 64 nodes, base 8: expect ~log_8(64)=2 ring levels; greedy unidirectional
  // routing should stay well under the node count.
  EXPECT_LE(max_hops, 24);
  EXPECT_GT(max_hops, 0);
}

TEST(PingManagerTest, SlowRepliesWithTimeoutLongerThanPeriod) {
  // With timeout >= period several pings can be outstanding at once. A live
  // peer whose replies take longer than one period (but less than the
  // timeout) must not be declared failed — each reply disarms the failure
  // timeout even though it answers an older ping than the latest one sent.
  // A crashed peer must still time out.
  Simulation sim(11);
  TopologyConfig tcfg;
  tcfg.num_as = 20;
  tcfg.t3_fraction = 1.0;  // every AS link 300-500 ms: replies beat no period
  SimNetwork net(Topology::Generate(tcfg, sim.rng()));
  const HostId a = net.AddHost(sim.rng());
  HostId b = net.AddHost(sim.rng());
  for (int i = 0; i < 64 && net.GetPath(a, b).latency < Duration::Millis(300); ++i) {
    b = net.AddHost(sim.rng());
  }
  ASSERT_GE(net.GetPath(a, b).latency, Duration::Millis(300));
  SimFabric fabric(sim, net, CostModel::Simulator());

  const Duration period = Duration::Millis(200);
  const Duration timeout = Duration::Seconds(3);
  PingManager pinger(fabric.TransportFor(a), period, timeout);
  // The peer side only needs the reply handler its PingManager registers.
  PingManager replier(fabric.TransportFor(b), period, timeout);
  HostId failed_peer;
  pinger.SetFailureHandler([&](HostId h) { failed_peer = h; });
  pinger.UpdateNeighbors({b});
  pinger.Start();

  sim.RunFor(Duration::Seconds(30));
  EXPECT_FALSE(failed_peer.valid()) << "responsive peer with RTT > period declared failed";

  fabric.CrashHost(b);
  sim.RunFor(timeout + Duration::Seconds(2));
  EXPECT_EQ(failed_peer, b) << "crashed peer not detected within the timeout";
}

TEST(PingManagerTest, CoalescedRoundsDetectCrashWithoutFalsePositives) {
  // Coalesced mode: one batch timer plus one shared timeout timer. The shared
  // timer must deliver each peer's verdict at that peer's own deadline: here
  // the crashed peer is armed once and never disarmed, while the live peer
  // (replying every round, timeout > period so rounds overlap) keeps
  // acquiring later deadlines — so when the dead peer's verdict fires, the
  // timer must re-arm for the live peer's future deadline instead of failing
  // it early or going quiet.
  Simulation sim(11);
  TopologyConfig tcfg;
  tcfg.num_as = 20;
  SimNetwork net(Topology::Generate(tcfg, sim.rng()));
  const HostId a = net.AddHost(sim.rng());
  const HostId b = net.AddHost(sim.rng());
  const HostId c = net.AddHost(sim.rng());
  SimFabric fabric(sim, net, CostModel::Simulator());

  const Duration period = Duration::Millis(200);
  const Duration timeout = Duration::Seconds(3);
  PingManager pinger(fabric.TransportFor(a), period, timeout, /*coalesce=*/true);
  PingManager replier_b(fabric.TransportFor(b), period, timeout);
  PingManager replier_c(fabric.TransportFor(c), period, timeout);
  std::vector<HostId> failed;
  pinger.SetFailureHandler([&](HostId h) { failed.push_back(h); });
  pinger.UpdateNeighbors({b, c});
  pinger.Start();

  // Both peers live: rounds come and go, nobody fails.
  sim.RunFor(Duration::Seconds(10));
  EXPECT_TRUE(failed.empty()) << "live peer declared failed in coalesced mode";

  // Crash b; c keeps replying. Exactly b must fail, within timeout + one
  // period (+ delivery slack) of its first unanswered round.
  fabric.CrashHost(b);
  sim.RunFor(timeout + Duration::Seconds(2));
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], b);

  // The shared timer must still be tracking c: crash it and the (re-armed)
  // deadline chain must deliver its verdict too.
  fabric.CrashHost(c);
  sim.RunFor(timeout + Duration::Seconds(2));
  ASSERT_EQ(failed.size(), 2u);
  EXPECT_EQ(failed[1], c);
}

TEST(OverlayClusterTest, CoalescedPingFailureDetectionRemovesCrashedNeighbor) {
  // Full-cluster version of PingFailureDetectionRemovesCrashedNeighbor with
  // batched pings: detection latency and repair must survive the phasing
  // change (all of a node's pings leave together once per period).
  ClusterConfig cfg = SmallConfig(24, 9);
  cfg.overlay.coalesce_pings = true;
  SimCluster cluster(cfg);
  cluster.Build();
  const size_t victim = 3;
  const HostId victim_host = cluster.node(victim).host();
  std::vector<size_t> observers;
  for (size_t i = 0; i < cluster.size(); ++i) {
    if (i != victim && cluster.node(i).overlay()->table().HasNeighbor(victim_host)) {
      observers.push_back(i);
    }
  }
  ASSERT_FALSE(observers.empty());
  cluster.Crash(victim);
  cluster.sim().RunFor(Duration::Seconds(200));
  for (size_t i : observers) {
    EXPECT_FALSE(cluster.node(i).overlay()->table().HasNeighbor(victim_host))
        << "observer " << i << " still references the crashed node";
  }
  EXPECT_EQ(cluster.CountRingViolations(), 0) << "ring did not heal with coalesced pings";
}

TEST(OverlayClusterTest, PingFailureDetectionRemovesCrashedNeighbor) {
  SimCluster cluster(SmallConfig(24, 9));
  cluster.Build();
  // Find a neighbor pair.
  const size_t victim = 3;
  const HostId victim_host = cluster.node(victim).host();
  std::vector<size_t> observers;
  for (size_t i = 0; i < cluster.size(); ++i) {
    if (i != victim && cluster.node(i).overlay()->table().HasNeighbor(victim_host)) {
      observers.push_back(i);
    }
  }
  ASSERT_FALSE(observers.empty());
  cluster.Crash(victim);
  // Within ping period + timeout (+ slack), every observer notices and
  // removes the dead neighbor.
  cluster.sim().RunFor(Duration::Seconds(200));
  for (size_t i : observers) {
    EXPECT_FALSE(cluster.node(i).overlay()->table().HasNeighbor(victim_host))
        << "observer " << i << " still references the crashed node";
  }
}

TEST(OverlayClusterTest, RingHealsAfterCrash) {
  SimCluster cluster(SmallConfig(24, 10));
  cluster.Build();
  cluster.Crash(5);
  cluster.Crash(11);
  cluster.sim().RunFor(Duration::Minutes(6));
  EXPECT_EQ(cluster.CountRingViolations(), 0) << "ring did not heal after crashes";
}

TEST(OverlayClusterTest, RestartRejoins) {
  SimCluster cluster(SmallConfig(20, 11));
  cluster.Build();
  cluster.Crash(4);
  cluster.sim().RunFor(Duration::Minutes(3));
  cluster.Restart(4);
  EXPECT_TRUE(cluster.node(4).overlay()->joined());
  cluster.sim().RunFor(Duration::Minutes(4));
  EXPECT_EQ(cluster.CountRingViolations(), 0);
}

TEST(OverlayClusterTest, NeighborCountMatchesPaperScale) {
  // Paper section 7.1: 400 nodes, base 8, leaf set 16 => ~32.3 distinct
  // neighbors. We check the same order of magnitude at a smaller scale.
  SimCluster cluster(SmallConfig(96, 12));
  cluster.Build();
  const double avg = cluster.AvgDistinctNeighbors();
  EXPECT_GT(avg, 10.0);
  EXPECT_LT(avg, 40.0);
}

TEST(OverlayClusterTest, DeterministicBuild) {
  auto fingerprint = [](uint64_t seed) {
    SimCluster cluster(SmallConfig(24, seed));
    cluster.Build();
    size_t acc = 0;
    for (size_t i = 0; i < cluster.size(); ++i) {
      acc = acc * 31 + cluster.node(i).overlay()->NumDistinctNeighbors();
    }
    return acc;
  };
  EXPECT_EQ(fingerprint(77), fingerprint(77));
}

}  // namespace
}  // namespace fuse
