// Tests for the topology generator, network model, and fault injector.
// The topology calibration test pins the route statistics the paper's
// evaluation depends on (sections 7.1, 7.6): hop counts 2-43 with median ~15
// and a median RTT near 130 ms with a heavy tail.
#include <gtest/gtest.h>

#include "common/stats.h"
#include "net/fault_injector.h"
#include "net/network.h"
#include "net/topology.h"

namespace fuse {
namespace {

TEST(TopologyTest, GeneratesConnectedGraph) {
  Rng rng(1);
  TopologyConfig cfg;
  cfg.num_as = 100;
  const Topology topo = Topology::Generate(cfg, rng);
  EXPECT_EQ(topo.NumAs(), 100u);
  EXPECT_GT(topo.NumRouters(), 100u);
  // Any two routers have a finite path (FUSE_CHECK inside would abort
  // otherwise).
  Rng pick(2);
  for (int i = 0; i < 200; ++i) {
    const RouterId a = topo.RandomRouter(pick);
    const RouterId b = topo.RandomRouter(pick);
    const auto p = topo.GetPath(a, b);
    EXPECT_GT(p.latency.ToMicros(), 0);
    EXPECT_GE(p.hops, 1u);
  }
}

TEST(TopologyTest, SameRouterIsLocalHop) {
  Rng rng(1);
  TopologyConfig cfg;
  cfg.num_as = 20;
  const Topology topo = Topology::Generate(cfg, rng);
  const RouterId r(0);
  const auto p = topo.GetPath(r, r);
  EXPECT_EQ(p.hops, 1u);
  EXPECT_LT(p.latency.ToMicros(), 1000);
}

TEST(TopologyTest, PathIsSymmetric) {
  Rng rng(3);
  TopologyConfig cfg;
  cfg.num_as = 50;
  const Topology topo = Topology::Generate(cfg, rng);
  Rng pick(4);
  for (int i = 0; i < 50; ++i) {
    const RouterId a = topo.RandomRouter(pick);
    const RouterId b = topo.RandomRouter(pick);
    const auto ab = topo.GetPath(a, b);
    const auto ba = topo.GetPath(b, a);
    EXPECT_EQ(ab.latency.ToMicros(), ba.latency.ToMicros());
    EXPECT_EQ(ab.hops, ba.hops);
  }
}

// Calibration against the paper's reported route statistics.
TEST(TopologyTest, CalibrationMatchesPaperRouteStats) {
  Rng rng(7);
  const TopologyConfig cfg;  // defaults are the calibrated values
  const Topology topo = Topology::Generate(cfg, rng);
  SimNetwork net{std::move(topo)};
  Rng pick(8);
  std::vector<HostId> hosts;
  for (int i = 0; i < 400; ++i) {
    hosts.push_back(net.AddHost(pick));
  }
  Summary rtt_ms;
  Summary hops;
  for (int i = 0; i < 3000; ++i) {
    const HostId a = hosts[pick.UniformInt(0, 399)];
    const HostId b = hosts[pick.UniformInt(0, 399)];
    if (a == b) {
      continue;
    }
    const auto p = net.GetPath(a, b);
    rtt_ms.Add(2 * p.latency.ToMillisF());
    hops.Add(p.hops);
  }
  // Paper: median RTT ~130 ms (Figure 6), heavy tail from T3 links.
  EXPECT_GT(rtt_ms.Median(), 100.0);
  EXPECT_LT(rtt_ms.Median(), 170.0);
  EXPECT_GT(rtt_ms.Percentile(99), 400.0);  // heavy tail present
  // Paper: route hops 2-43, median 15 (section 7.6).
  EXPECT_GT(hops.Median(), 11.0);
  EXPECT_LT(hops.Median(), 19.0);
  EXPECT_GE(hops.Min(), 1.0);  // same-router pairs can be 1 hop
  EXPECT_LT(hops.Max(), 60.0);
}

TEST(NetworkTest, RouteLossComposition) {
  Rng rng(9);
  TopologyConfig cfg;
  cfg.num_as = 50;
  SimNetwork net{Topology::Generate(cfg, rng)};
  Rng pick(10);
  const HostId a = net.AddHost(pick);
  const HostId b = net.AddHost(pick);
  EXPECT_DOUBLE_EQ(net.RouteSuccessProbability(a, b), 1.0);
  net.SetPerLinkLossRate(0.01);
  const auto path = net.GetPath(a, b);
  const double expect = std::pow(0.99, path.hops);
  EXPECT_NEAR(net.RouteSuccessProbability(a, b), expect, 1e-12);
}

TEST(FaultInjectorTest, HostDown) {
  FaultInjector f;
  const HostId a(1), b(2);
  EXPECT_FALSE(f.IsBlocked(a, b));
  f.SetHostDown(a, true);
  EXPECT_TRUE(f.IsBlocked(a, b));
  EXPECT_TRUE(f.IsBlocked(b, a));
  f.SetHostDown(a, false);
  EXPECT_FALSE(f.IsBlocked(a, b));
}

TEST(FaultInjectorTest, BlockedPairIsSymmetricAndIntransitive) {
  FaultInjector f;
  const HostId a(1), b(2), c(3);
  f.BlockPair(a, c);
  // The intransitive scenario from section 3.4: A-B fine, B-C fine, A-C not.
  EXPECT_FALSE(f.IsBlocked(a, b));
  EXPECT_FALSE(f.IsBlocked(b, c));
  EXPECT_TRUE(f.IsBlocked(a, c));
  EXPECT_TRUE(f.IsBlocked(c, a));
  f.UnblockPair(c, a);  // order does not matter
  EXPECT_FALSE(f.IsBlocked(a, c));
}

TEST(FaultInjectorTest, Partition) {
  FaultInjector f;
  const HostId a(1), b(2), c(3), d(4);
  f.PartitionHosts({a, b});
  EXPECT_FALSE(f.IsBlocked(a, b));
  EXPECT_TRUE(f.IsBlocked(a, c));
  EXPECT_TRUE(f.IsBlocked(b, d));
  EXPECT_FALSE(f.IsBlocked(c, d));
  f.ClearPartitions();
  EXPECT_FALSE(f.IsBlocked(a, c));
}

TEST(FaultInjectorTest, LayeredPartitionsIsolateEveryGroup) {
  FaultInjector f;
  const HostId a(1), b(2), c(3), d(4), e(5), g(6);
  // Two partitions layered on one rule set: {a,b} and {c,d}. Each group can
  // talk internally; nothing crosses a boundary — including into the
  // unassigned remainder {e,g}, which forms its own implicit side.
  f.PartitionHosts({a, b});
  f.PartitionHosts({c, d});
  EXPECT_FALSE(f.IsBlocked(a, b));
  EXPECT_FALSE(f.IsBlocked(c, d));
  EXPECT_FALSE(f.IsBlocked(e, g));
  EXPECT_TRUE(f.IsBlocked(a, c));
  EXPECT_TRUE(f.IsBlocked(b, d));
  EXPECT_TRUE(f.IsBlocked(a, e));
  EXPECT_TRUE(f.IsBlocked(d, g));
  f.ClearPartitions();
  EXPECT_FALSE(f.IsBlocked(a, c));
  EXPECT_FALSE(f.IsBlocked(d, g));
}

TEST(FaultInjectorTest, RepartitionMovesHostToItsNewGroup) {
  FaultInjector f;
  const HostId a(1), b(2), c(3);
  f.PartitionHosts({a, b});
  EXPECT_FALSE(f.IsBlocked(a, b));
  // A host appears in at most one group at a time: re-partitioning b moves
  // it out of {a,b} and into the new group with c.
  f.PartitionHosts({b, c});
  EXPECT_TRUE(f.IsBlocked(a, b));
  EXPECT_FALSE(f.IsBlocked(b, c));
  EXPECT_TRUE(f.IsBlocked(a, c));
}

TEST(FaultInjectorTest, BlockedPairLayersOverPartition) {
  FaultInjector f;
  const HostId a(1), b(2), c(3);
  f.PartitionHosts({a, b, c});
  EXPECT_FALSE(f.IsBlocked(a, b));
  // An intransitive pair failure inside a partition group still blocks that
  // pair (the rules are independent layers, not a single verdict).
  f.BlockPair(a, b);
  EXPECT_TRUE(f.IsBlocked(a, b));
  EXPECT_FALSE(f.IsBlocked(a, c));
  EXPECT_FALSE(f.IsBlocked(b, c));
  f.UnblockPair(a, b);
  EXPECT_FALSE(f.IsBlocked(a, b));
  // And the other way around: healing the partition does not unblock pairs.
  f.BlockPair(a, c);
  f.ClearPartitions();
  EXPECT_TRUE(f.IsBlocked(a, c));
  EXPECT_FALSE(f.IsBlocked(a, b));
  // Down-host rules also survive partition healing.
  f.SetHostDown(b, true);
  EXPECT_TRUE(f.IsBlocked(a, b));
  f.SetHostDown(b, false);
  EXPECT_FALSE(f.IsBlocked(a, b));
}

TEST(FaultInjectorTest, OneWayBlockIsDirectional) {
  FaultInjector f;
  const HostId a(1), b(2);
  f.BlockOneWay(a, b);
  // The asymmetric-connectivity case (Halpern/Ricciardi): a cannot reach b,
  // but b still reaches a.
  EXPECT_TRUE(f.IsBlocked(a, b));
  EXPECT_FALSE(f.IsBlocked(b, a));
  f.UnblockOneWay(a, b);
  EXPECT_FALSE(f.IsBlocked(a, b));
}

TEST(FaultInjectorTest, LinkAndHostDelaysCompose) {
  FaultInjector f;
  const HostId a(1), b(2), c(3);
  EXPECT_TRUE(f.ExtraDelay(a, b).IsZero());
  f.SetLinkDelay(a, b, Duration::Millis(100));
  EXPECT_EQ(f.ExtraDelay(a, b), Duration::Millis(100));
  EXPECT_TRUE(f.ExtraDelay(b, a).IsZero());  // directional
  // A slow-but-alive host taxes every message touching it, on top of links.
  f.SetHostDelay(b, Duration::Millis(50));
  EXPECT_EQ(f.ExtraDelay(a, b), Duration::Millis(150));
  EXPECT_EQ(f.ExtraDelay(b, a), Duration::Millis(50));
  EXPECT_EQ(f.ExtraDelay(c, b), Duration::Millis(50));
  EXPECT_TRUE(f.ExtraDelay(a, c).IsZero());
  f.SetLinkDelay(a, b, Duration::Zero());
  f.SetHostDelay(b, Duration::Zero());
  EXPECT_TRUE(f.ExtraDelay(a, b).IsZero());
}

TEST(FaultInjectorTest, ClockRateDefaultsToNominal) {
  FaultInjector f;
  const HostId a(1), b(2);
  EXPECT_DOUBLE_EQ(f.ClockRate(a), 1.0);
  f.SetClockRate(a, 2.0);
  EXPECT_DOUBLE_EQ(f.ClockRate(a), 2.0);
  EXPECT_DOUBLE_EQ(f.ClockRate(b), 1.0);
  f.SetClockRate(a, 1.0);  // 1.0 clears the rule
  EXPECT_DOUBLE_EQ(f.ClockRate(a), 1.0);
}

TEST(FaultInjectorTest, LossBurstsAreTimedAndCompose) {
  FaultInjector f;
  const HostId a(1), b(2), c(3);
  EXPECT_FALSE(f.HasLossBursts());
  f.AddLossBurst(a, TimePoint::FromMicros(100), TimePoint::FromMicros(200), 0.5);
  EXPECT_TRUE(f.HasLossBursts());
  // Outside the window, or not touching the host: no extra loss.
  EXPECT_DOUBLE_EQ(f.BurstLossProbability(a, b, TimePoint::FromMicros(50)), 0.0);
  EXPECT_DOUBLE_EQ(f.BurstLossProbability(a, b, TimePoint::FromMicros(200)), 0.0);
  EXPECT_DOUBLE_EQ(f.BurstLossProbability(b, c, TimePoint::FromMicros(150)), 0.0);
  // Inside, touching the host in either direction.
  EXPECT_DOUBLE_EQ(f.BurstLossProbability(a, b, TimePoint::FromMicros(150)), 0.5);
  EXPECT_DOUBLE_EQ(f.BurstLossProbability(b, a, TimePoint::FromMicros(150)), 0.5);
  // An all-traffic burst (invalid host) overlapping composes independently:
  // survive = 0.5 * 0.5.
  f.AddLossBurst(HostId(), TimePoint::FromMicros(120), TimePoint::FromMicros(180), 0.5);
  EXPECT_DOUBLE_EQ(f.BurstLossProbability(a, b, TimePoint::FromMicros(150)), 0.75);
  EXPECT_DOUBLE_EQ(f.BurstLossProbability(b, c, TimePoint::FromMicros(150)), 0.5);
  f.ClearLossBursts();
  EXPECT_FALSE(f.HasLossBursts());
  EXPECT_DOUBLE_EQ(f.BurstLossProbability(a, b, TimePoint::FromMicros(150)), 0.0);
}

TEST(FaultInjectorTest, ReorderJitterTakesTheLargestApplicableBound) {
  FaultInjector f;
  const HostId a(1), b(2), c(3);
  EXPECT_TRUE(f.ReorderJitterFor(a, b).IsZero());
  f.SetReorderJitter(a, Duration::Millis(20));
  EXPECT_EQ(f.ReorderJitterFor(a, b), Duration::Millis(20));
  EXPECT_EQ(f.ReorderJitterFor(c, a), Duration::Millis(20));
  EXPECT_TRUE(f.ReorderJitterFor(b, c).IsZero());
  // Global jitter applies to everything; per-host maxima win when larger.
  f.SetReorderJitter(HostId(), Duration::Millis(5));
  EXPECT_EQ(f.ReorderJitterFor(b, c), Duration::Millis(5));
  EXPECT_EQ(f.ReorderJitterFor(a, b), Duration::Millis(20));
  f.SetReorderJitter(a, Duration::Zero());
  f.SetReorderJitter(HostId(), Duration::Zero());
  EXPECT_TRUE(f.ReorderJitterFor(a, b).IsZero());
}

// The process backend replicates rules to workers via EncodeTo/DecodeFrom;
// a kind that does not survive the round trip would silently replay a
// different schedule in every worker. Every rule kind goes through the wire
// and must come back with identical verdicts — and identical re-encoding.
TEST(FaultInjectorTest, EncodeDecodeRoundTripsEveryRuleKind) {
  FaultInjector f;
  const HostId a(1), b(2), c(3), d(4), e(5);
  f.SetHostDown(e, true);
  f.BlockPair(a, c);
  f.BlockOneWay(b, a);
  f.PartitionHosts({a, b});
  f.PartitionHosts({c, d});
  f.SetLinkDelay(a, b, Duration::Millis(250));
  f.SetHostDelay(c, Duration::Millis(40));
  f.SetClockRate(b, 1.75);
  f.AddLossBurst(a, TimePoint::FromMicros(1000), TimePoint::FromMicros(9000), 0.3);
  f.AddLossBurst(HostId(), TimePoint::FromMicros(2000), TimePoint::FromMicros(3000), 0.9);
  f.SetReorderJitter(d, Duration::Millis(15));
  f.SetReorderJitter(HostId(), Duration::Millis(2));

  Writer w;
  f.EncodeTo(w);
  const std::vector<uint8_t> wire = w.Take();
  FaultInjector g;
  Reader r(wire);
  ASSERT_TRUE(g.DecodeFrom(r));
  ASSERT_TRUE(r.Done()) << "decoder must consume the whole encoding";

  // Verdict equality across every kind.
  EXPECT_TRUE(g.IsHostDown(e));
  EXPECT_TRUE(g.IsBlocked(a, c));
  EXPECT_TRUE(g.IsBlocked(b, a));     // one-way
  EXPECT_FALSE(g.IsBlocked(a, b));    // same partition group, no other rule
  EXPECT_TRUE(g.IsBlocked(a, d));     // cross-partition
  EXPECT_EQ(g.ExtraDelay(a, b), Duration::Millis(250));
  EXPECT_EQ(g.ExtraDelay(b, c), Duration::Millis(40));
  EXPECT_DOUBLE_EQ(g.ClockRate(b), 1.75);
  EXPECT_DOUBLE_EQ(g.ClockRate(a), 1.0);
  EXPECT_DOUBLE_EQ(g.BurstLossProbability(a, b, TimePoint::FromMicros(1500)), 0.3);
  EXPECT_DOUBLE_EQ(g.BurstLossProbability(c, d, TimePoint::FromMicros(2500)), 0.9);
  EXPECT_EQ(g.ReorderJitterFor(c, d), Duration::Millis(15));
  EXPECT_EQ(g.ReorderJitterFor(a, b), Duration::Millis(2));

  // Re-encoding the decoded rules reproduces the exact wire bytes, so rules
  // can be forwarded worker-to-worker without drift.
  Writer w2;
  g.EncodeTo(w2);
  EXPECT_EQ(w2.bytes(), wire);

  // Decoding must fully replace prior state, not merge into it.
  FaultInjector h;
  h.SetHostDown(a, true);
  h.SetClockRate(d, 3.0);
  Reader r2(wire);
  ASSERT_TRUE(h.DecodeFrom(r2));
  EXPECT_FALSE(h.IsHostDown(a));
  EXPECT_DOUBLE_EQ(h.ClockRate(d), 1.0);
}

TEST(NetworkTest, CoLocatedHostsShareRouter) {
  Rng rng(11);
  TopologyConfig cfg;
  cfg.num_as = 30;
  SimNetwork net{Topology::Generate(cfg, rng)};
  const RouterId r = net.topology().RandomRouter(rng);
  const HostId a = net.AddHostAt(r);
  const HostId b = net.AddHostAt(r);
  EXPECT_EQ(net.RouterOf(a), net.RouterOf(b));
  const auto p = net.GetPath(a, b);
  EXPECT_EQ(p.hops, 1u);
}

}  // namespace
}  // namespace fuse
