// Integration tests for FUSE group semantics (paper sections 3 and 6):
// distributed one-way agreement under crashes, partitions, intransitive
// connectivity failures, and delegate failures.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "runtime/sim_cluster.h"

namespace fuse {
namespace {

ClusterConfig SmallConfig(int n, uint64_t seed) {
  ClusterConfig cfg;
  cfg.num_nodes = n;
  cfg.seed = seed;
  cfg.topology.num_as = 60;
  cfg.cost = CostModel::Simulator();
  return cfg;
}

// Records failure notifications per node for one group.
struct Recorder {
  std::map<size_t, int> fired;          // node index -> invocation count
  std::map<size_t, TimePoint> when;

  void Watch(SimCluster& cluster, size_t i, FuseId id) {
    cluster.node(i).fuse()->RegisterFailureHandler(id, [this, &cluster, i](FuseId) {
      fired[i]++;
      when[i] = cluster.sim().Now();
    });
  }
  int TotalFirings() const {
    int total = 0;
    for (const auto& [i, n] : fired) {
      total += n;
    }
    return total;
  }
};

// Creates a group rooted at `root` with the given members; runs the sim
// until the callback fires. Returns the id; status in *status_out.
FuseId CreateGroupSync(SimCluster& cluster, size_t root, const std::vector<size_t>& members,
                       Status* status_out) {
  FuseId id;
  bool done = false;
  Status status;
  cluster.node(root).fuse()->CreateGroup(cluster.RefsOf(members),
                                         [&](const Status& s, FuseId gid) {
                                           status = s;
                                           id = gid;
                                           done = true;
                                         });
  cluster.sim().RunUntilCondition([&] { return done; },
                                  cluster.sim().Now() + Duration::Minutes(3));
  EXPECT_TRUE(done) << "CreateGroup callback never fired";
  if (status_out != nullptr) {
    *status_out = status;
  }
  return id;
}

TEST(FuseCreateTest, SucceedsWithLiveMembers) {
  SimCluster cluster(SmallConfig(24, 101));
  cluster.Build();
  Status status;
  const auto members = cluster.PickLiveNodes(5);
  const FuseId id = CreateGroupSync(cluster, members[0], members, &status);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(id.valid());
  for (size_t m : members) {
    EXPECT_TRUE(cluster.node(m).fuse()->IsParticipant(id)) << "member " << m;
  }
}

TEST(FuseCreateTest, BlockingSemanticsLatencyIsRpcLike) {
  SimCluster cluster(SmallConfig(24, 102));
  cluster.Build();
  const auto members = cluster.PickLiveNodes(4);
  const TimePoint t0 = cluster.sim().Now();
  Status status;
  CreateGroupSync(cluster, members[0], members, &status);
  const Duration took = cluster.sim().Now() - t0;
  ASSERT_TRUE(status.ok());
  // Blocking create: one round trip to the farthest member (plus slack),
  // not a timeout-scale delay.
  EXPECT_LT(took.ToSecondsF(), 5.0);
  EXPECT_GT(took.ToMicros(), 0);
}

TEST(FuseCreateTest, FailsWhenMemberDown) {
  SimCluster cluster(SmallConfig(24, 103));
  cluster.Build();
  const auto members = cluster.PickLiveNodes(4);
  cluster.Crash(members[2]);
  Status status;
  const FuseId id = CreateGroupSync(cluster, members[0], members, &status);
  EXPECT_FALSE(status.ok());
  // No orphaned state: the live members learn of the failed creation, and a
  // handler registered afterwards fires immediately (paper 3.2).
  cluster.sim().RunFor(Duration::Minutes(3));
  for (size_t m : {members[1], members[3]}) {
    EXPECT_FALSE(cluster.node(m).fuse()->IsParticipant(id)) << "member " << m;
  }
  int fired = 0;
  cluster.node(members[1]).fuse()->RegisterFailureHandler(id, [&](FuseId) { ++fired; });
  cluster.sim().RunFor(Duration::Seconds(1));
  EXPECT_EQ(fired, 1);
}

TEST(FuseCreateTest, SingletonGroupIsImmediate) {
  SimCluster cluster(SmallConfig(8, 104));
  cluster.Build();
  Status status;
  const FuseId id = CreateGroupSync(cluster, 0, {0}, &status);
  EXPECT_TRUE(status.ok());
  EXPECT_TRUE(cluster.node(0).fuse()->IsParticipant(id));
  // Explicit signal delivers the local notification.
  int fired = 0;
  cluster.node(0).fuse()->RegisterFailureHandler(id, [&](FuseId) { ++fired; });
  cluster.node(0).fuse()->SignalFailure(id);
  cluster.sim().RunFor(Duration::Seconds(1));
  EXPECT_EQ(fired, 1);
}

TEST(FuseSignalTest, ExplicitSignalNotifiesEveryMemberExactlyOnce) {
  SimCluster cluster(SmallConfig(32, 105));
  cluster.Build();
  const auto members = cluster.PickLiveNodes(6);
  Status status;
  const FuseId id = CreateGroupSync(cluster, members[0], members, &status);
  ASSERT_TRUE(status.ok());
  Recorder rec;
  for (size_t m : members) {
    rec.Watch(cluster, m, id);
  }
  // A non-root member signals.
  cluster.node(members[3]).fuse()->SignalFailure(id);
  cluster.sim().RunFor(Duration::Minutes(3));
  for (size_t m : members) {
    EXPECT_EQ(rec.fired[m], 1) << "member " << m;
  }
  // State is gone everywhere.
  for (size_t m : members) {
    EXPECT_FALSE(cluster.node(m).fuse()->HasLiveGroup(id));
  }
}

TEST(FuseSignalTest, NotificationLatencyIsNetworkScale) {
  SimCluster cluster(SmallConfig(32, 106));
  cluster.Build();
  const auto members = cluster.PickLiveNodes(6);
  Status status;
  const FuseId id = CreateGroupSync(cluster, members[0], members, &status);
  ASSERT_TRUE(status.ok());
  Recorder rec;
  for (size_t m : members) {
    rec.Watch(cluster, m, id);
  }
  const TimePoint t0 = cluster.sim().Now();
  cluster.node(members[2]).fuse()->SignalFailure(id);
  cluster.sim().RunFor(Duration::Minutes(1));
  for (size_t m : members) {
    ASSERT_EQ(rec.fired[m], 1);
    // Paper Figure 8: signalled notifications are sub-second-ish (network
    // latency scale), far below any timeout.
    EXPECT_LT((rec.when[m] - t0).ToSecondsF(), 5.0) << "member " << m;
  }
}

TEST(FuseSignalTest, SignalOnOneGroupDoesNotAffectOthers) {
  SimCluster cluster(SmallConfig(24, 107));
  cluster.Build();
  const auto members = cluster.PickLiveNodes(4);
  Status s1, s2;
  const FuseId id1 = CreateGroupSync(cluster, members[0], members, &s1);
  const FuseId id2 = CreateGroupSync(cluster, members[0], members, &s2);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  Recorder rec1, rec2;
  for (size_t m : members) {
    rec1.Watch(cluster, m, id1);
    rec2.Watch(cluster, m, id2);
  }
  cluster.node(members[1]).fuse()->SignalFailure(id1);
  cluster.sim().RunFor(Duration::Minutes(5));
  EXPECT_EQ(rec1.TotalFirings(), static_cast<int>(members.size()));
  EXPECT_EQ(rec2.TotalFirings(), 0) << "independent group was affected";
  for (size_t m : members) {
    EXPECT_TRUE(cluster.node(m).fuse()->IsParticipant(id2));
  }
}

TEST(FuseRegisterTest, UnknownIdFiresImmediately) {
  SimCluster cluster(SmallConfig(8, 108));
  cluster.Build();
  FuseId bogus;
  bogus.hi = 123;
  bogus.lo = 456;
  int fired = 0;
  cluster.node(0).fuse()->RegisterFailureHandler(bogus, [&](FuseId) { ++fired; });
  cluster.sim().RunFor(Duration::Seconds(1));
  EXPECT_EQ(fired, 1);
}

TEST(FuseCrashTest, MemberCrashNotifiesAllLiveMembers) {
  SimCluster cluster(SmallConfig(32, 109));
  cluster.Build();
  const auto members = cluster.PickLiveNodes(5);
  Status status;
  const FuseId id = CreateGroupSync(cluster, members[0], members, &status);
  ASSERT_TRUE(status.ok());
  Recorder rec;
  for (size_t m : members) {
    rec.Watch(cluster, m, id);
  }
  const TimePoint t0 = cluster.sim().Now();
  cluster.Crash(members[4]);
  cluster.sim().RunFor(Duration::Minutes(6));
  for (size_t k = 0; k < 4; ++k) {
    const size_t m = members[k];
    EXPECT_EQ(rec.fired[m], 1) << "member " << m;
    // Paper Figure 9: ping + repair timeouts bound notification by ~4 min.
    EXPECT_LT((rec.when[m] - t0).ToSecondsF(), 300.0);
  }
}

TEST(FuseCrashTest, RootCrashNotifiesAllMembers) {
  SimCluster cluster(SmallConfig(32, 110));
  cluster.Build();
  const auto members = cluster.PickLiveNodes(5);
  Status status;
  const FuseId id = CreateGroupSync(cluster, members[0], members, &status);
  ASSERT_TRUE(status.ok());
  Recorder rec;
  for (size_t k = 1; k < members.size(); ++k) {
    rec.Watch(cluster, members[k], id);
  }
  cluster.Crash(members[0]);  // the root
  cluster.sim().RunFor(Duration::Minutes(6));
  for (size_t k = 1; k < members.size(); ++k) {
    EXPECT_EQ(rec.fired[members[k]], 1) << "member " << members[k];
  }
}

TEST(FuseCrashTest, CrashRecoveryTearsDownForgottenGroups) {
  SimCluster cluster(SmallConfig(24, 111));
  cluster.Build();
  const auto members = cluster.PickLiveNodes(4);
  Status status;
  const FuseId id = CreateGroupSync(cluster, members[0], members, &status);
  ASSERT_TRUE(status.ok());
  Recorder rec;
  for (size_t k = 0; k < 3; ++k) {
    rec.Watch(cluster, members[k], id);
  }
  // Crash and quickly restart member 3: it recovers with no stable storage,
  // so the group must still be torn down at everyone (paper 3.6).
  cluster.Crash(members[3]);
  cluster.sim().RunFor(Duration::Seconds(10));
  cluster.Restart(members[3]);
  cluster.sim().RunFor(Duration::Minutes(8));
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(rec.fired[members[k]], 1) << "member " << members[k];
  }
  EXPECT_FALSE(cluster.node(members[3]).fuse()->HasLiveGroup(id));
}

TEST(FusePartitionTest, BothSidesGetNotified) {
  SimCluster cluster(SmallConfig(32, 112));
  cluster.Build();
  const auto members = cluster.PickLiveNodes(6);
  Status status;
  const FuseId id = CreateGroupSync(cluster, members[0], members, &status);
  ASSERT_TRUE(status.ok());
  Recorder rec;
  for (size_t m : members) {
    rec.Watch(cluster, m, id);
  }
  // Partition half the members (with whatever delegates happen to sit where)
  // from the rest of the world.
  std::vector<HostId> side;
  for (size_t k = 3; k < 6; ++k) {
    side.push_back(cluster.node(members[k]).host());
  }
  cluster.net().faults().PartitionHosts(side);
  cluster.sim().RunFor(Duration::Minutes(8));
  // FUSE guarantees delivery on both sides of the partition (section 3.3),
  // even though no information can cross it.
  for (size_t m : members) {
    EXPECT_EQ(rec.fired[m], 1) << "member " << m;
  }
}

TEST(FuseIntransitiveTest, FailOnSendSignalsOnlyTheAffectedGroup) {
  SimCluster cluster(SmallConfig(32, 113));
  cluster.Build();
  const auto picks = cluster.PickLiveNodes(6);
  const std::vector<size_t> group_a{picks[0], picks[1], picks[2]};
  const std::vector<size_t> group_b{picks[0], picks[3], picks[4]};
  Status sa, sb;
  const FuseId id_a = CreateGroupSync(cluster, group_a[0], group_a, &sa);
  const FuseId id_b = CreateGroupSync(cluster, group_b[0], group_b, &sb);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  Recorder rec_a, rec_b;
  for (size_t m : group_a) {
    rec_a.Watch(cluster, m, id_a);
  }
  for (size_t m : group_b) {
    rec_b.Watch(cluster, m, id_b);
  }
  // Intransitive failure between two members of group A only: the FUSE layer
  // may not notice (they need not be overlay neighbors), but the application
  // does on its next send, and explicitly signals (fail-on-send, 3.4).
  cluster.net().faults().BlockPair(cluster.node(picks[1]).host(), cluster.node(picks[2]).host());
  cluster.node(picks[1]).fuse()->SignalFailure(id_a);
  cluster.sim().RunFor(Duration::Minutes(5));
  EXPECT_EQ(rec_a.TotalFirings(), 3);
  // Group B shares node picks[0] but no failed path: it must survive.
  EXPECT_EQ(rec_b.TotalFirings(), 0);
  for (size_t m : group_b) {
    EXPECT_TRUE(cluster.node(m).fuse()->IsParticipant(id_b));
  }
}

TEST(FuseDelegateTest, DelegateCrashRepairsWithoutFalsePositive) {
  SimCluster cluster(SmallConfig(48, 114));
  cluster.Build();
  // Create groups until one has a pure delegate we can crash.
  for (int attempt = 0; attempt < 20; ++attempt) {
    const auto members = cluster.PickLiveNodes(3);
    Status status;
    const FuseId id = CreateGroupSync(cluster, members[0], members, &status);
    ASSERT_TRUE(status.ok());
    cluster.sim().RunFor(Duration::Seconds(5));
    size_t delegate = SIZE_MAX;
    for (size_t i = 0; i < cluster.size(); ++i) {
      if (cluster.IsUp(i) && cluster.node(i).fuse()->HasLiveGroup(id) &&
          !cluster.node(i).fuse()->IsParticipant(id)) {
        delegate = i;
        break;
      }
    }
    if (delegate == SIZE_MAX) {
      continue;  // short paths, no delegates; try another group
    }
    Recorder rec;
    for (size_t m : members) {
      rec.Watch(cluster, m, id);
    }
    cluster.Crash(delegate);
    cluster.sim().RunFor(Duration::Minutes(10));
    // Delegate failures trigger repair, not application notification
    // (section 6: repair routes around all failures involving delegates).
    EXPECT_EQ(rec.TotalFirings(), 0) << "delegate crash caused a false positive";
    for (size_t m : members) {
      EXPECT_TRUE(cluster.node(m).fuse()->IsParticipant(id));
    }
    return;
  }
  GTEST_SKIP() << "no group with a pure delegate found";
}

TEST(FuseQuiescenceTest, NoFalsePositivesInHealthyNetwork) {
  SimCluster cluster(SmallConfig(40, 115));
  cluster.Build();
  std::vector<FuseId> ids;
  Recorder rec;
  for (int g = 0; g < 20; ++g) {
    const auto members = cluster.PickLiveNodes(4);
    Status status;
    const FuseId id = CreateGroupSync(cluster, members[0], members, &status);
    ASSERT_TRUE(status.ok());
    ids.push_back(id);
    for (size_t m : members) {
      rec.Watch(cluster, m, id);
    }
  }
  cluster.sim().RunFor(Duration::Minutes(40));
  EXPECT_EQ(rec.TotalFirings(), 0) << "healthy network produced false positives";
}

TEST(FuseSteadyStateTest, NoExtraMessagesWithoutFailures) {
  // Paper section 7.5: in the absence of failures, FUSE groups impose no
  // messages beyond overlay maintenance (only the piggybacked hash).
  SimCluster cluster(SmallConfig(40, 116));
  cluster.Build();
  auto& m = cluster.sim().metrics();
  cluster.sim().RunFor(Duration::Minutes(5));  // let pings reach steady state

  const uint64_t fuse_before =
      m.MessageCount(MsgCategory::kFuseSoftNotification) +
      m.MessageCount(MsgCategory::kFuseHardNotification) +
      m.MessageCount(MsgCategory::kFuseNeedRepair) + m.MessageCount(MsgCategory::kFuseRepair);
  for (int g = 0; g < 10; ++g) {
    const auto members = cluster.PickLiveNodes(4);
    Status status;
    CreateGroupSync(cluster, members[0], members, &status);
    ASSERT_TRUE(status.ok());
  }
  cluster.sim().RunFor(Duration::Minutes(20));
  const uint64_t fuse_after =
      m.MessageCount(MsgCategory::kFuseSoftNotification) +
      m.MessageCount(MsgCategory::kFuseHardNotification) +
      m.MessageCount(MsgCategory::kFuseNeedRepair) + m.MessageCount(MsgCategory::kFuseRepair);
  EXPECT_EQ(fuse_after, fuse_before)
      << "failure-free steady state generated FUSE repair/notification traffic";
}

TEST(FuseDeterminismTest, SameSeedSameOutcome) {
  auto run = [](uint64_t seed) {
    SimCluster cluster(SmallConfig(24, seed));
    cluster.Build();
    const auto members = cluster.PickLiveNodes(4);
    Status status;
    const FuseId id = CreateGroupSync(cluster, members[0], members, &status);
    cluster.Crash(members[1]);
    cluster.sim().RunFor(Duration::Minutes(6));
    return std::make_pair(id.lo ^ id.hi, cluster.sim().metrics().TotalMessages());
  };
  EXPECT_EQ(run(314), run(314));
}

}  // namespace
}  // namespace fuse
