// Tests for the runtime layer: cluster churn driver and the live (wall-clock,
// threaded) runtime — the paper's "identical code base except for the base
// messaging layer" claim, exercised for real.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "runtime/live_runtime.h"
#include "runtime/node.h"
#include "runtime/sim_cluster.h"

namespace fuse {
namespace {

TEST(SimClusterChurnTest, PopulationOscillatesAndRingSurvives) {
  ClusterConfig cfg;
  cfg.num_nodes = 40;
  cfg.seed = 501;
  cfg.topology.num_as = 60;
  cfg.cost = CostModel::Simulator();
  SimCluster cluster(cfg);
  cluster.Build();
  // Churn half the nodes aggressively; stable half stays.
  cluster.StartChurn(20, 20, Duration::Minutes(5), Duration::Minutes(5));
  cluster.sim().RunFor(Duration::Minutes(40));
  cluster.StopChurn();
  const size_t live = cluster.NumLiveNodes();
  EXPECT_GE(live, 25u);
  EXPECT_LE(live, 40u);
  // Let things settle; the stable core must still form a consistent ring.
  cluster.sim().RunFor(Duration::Minutes(15));
  // Routing still works between stable nodes.
  int delivered = 0;
  for (size_t i = 0; i < 20; ++i) {
    cluster.node(i).overlay()->SetRoutedHandler(5, [&](SkipNetNode::RoutedUpcall& u) {
      if (u.at_dest) {
        ++delivered;
      }
      return false;
    });
  }
  for (int t = 0; t < 20; ++t) {
    const size_t a = static_cast<size_t>(cluster.sim().rng().UniformInt(0, 19));
    const size_t b = static_cast<size_t>(cluster.sim().rng().UniformInt(0, 19));
    if (a == b) {
      ++delivered;  // trivially "delivered"
      continue;
    }
    cluster.node(a).overlay()->RouteByName(cluster.RefOf(b).name, 5, {}, MsgCategory::kApp);
  }
  cluster.sim().RunFor(Duration::Minutes(2));
  EXPECT_GE(delivered, 18) << "routing badly degraded after churn";
}

// Regression (PR 6): a node crashed and restarted with NO down-window used
// to be unable to rejoin until the survivors' ping timeouts evicted its dead
// incarnation — greedy routing resolved the join search to the stale table
// entry naming the joiner's own host, and the joiner's self-host guard
// dropped it. The join path is now incarnation-aware: the hop holding the
// stale entry evicts it and routes around, so the first join attempt
// succeeds, long before failure detection (~ping_period + ping_timeout).
TEST(SimClusterRestartTest, InstantRestartRejoinsBeforeFailureDetection) {
  ClusterConfig cfg;
  cfg.num_nodes = 8;
  cfg.seed = 17;
  cfg.topology.num_as = 40;
  cfg.cost = CostModel::Simulator();
  SimCluster cluster(cfg);
  cluster.Build();
  const TimePoint t0 = cluster.env().Now();
  cluster.Crash(3);
  cluster.Restart(3);  // no AdvanceFor between: the down-window is zero
  bool joined = false;
  cluster.Run([&] { joined = cluster.IsJoined(3); });
  EXPECT_TRUE(joined) << "instantly-restarted node did not rejoin";
  const Duration elapsed = cluster.env().Now() - t0;
  EXPECT_LT(elapsed, Duration::Seconds(30))
      << "rejoin took " << elapsed.ToString()
      << " — it waited out failure detection instead of evicting the stale "
         "incarnation on the join path";
}

class LiveFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    LiveRuntime::Config cfg;
    cfg.seed = 7;
    runtime_ = std::make_unique<LiveRuntime>(cfg);
    // Scaled-down protocol constants so the wall-clock test finishes fast.
    overlay_cfg_.ping_period = Duration::Millis(200);
    overlay_cfg_.ping_timeout = Duration::Millis(100);
    overlay_cfg_.join_timeout = Duration::Millis(500);
    overlay_cfg_.query_timeout = Duration::Millis(200);
    overlay_cfg_.repair_delay = Duration::Millis(50);
    overlay_cfg_.leaf_exchange_period = Duration::Millis(500);
    fuse_params_.create_timeout = Duration::Seconds(2);
    fuse_params_.install_timeout = Duration::Seconds(1);
    fuse_params_.member_repair_timeout = Duration::Millis(600);
    fuse_params_.root_repair_timeout = Duration::Seconds(1);
    fuse_params_.link_liveness_timeout = Duration::Millis(400);
    fuse_params_.grace_period = Duration::Millis(100);
    fuse_params_.repair_backoff_initial = Duration::Millis(100);
    fuse_params_.repair_backoff_cap = Duration::Millis(400);
  }

  void BuildNodes(int n) {
    for (int i = 0; i < n; ++i) {
      LiveTransport* t = runtime_->CreateHost();
      char name[16];
      std::snprintf(name, sizeof(name), "live%03d", i);
      nodes_.push_back(nullptr);
      runtime_->RunOnLoop([&, i] {
        nodes_[i] = std::make_unique<Node>(t, name, NumericId(0x1111111111111111ULL * (i + 1)),
                                           overlay_cfg_, fuse_params_);
      });
    }
    // Join sequentially through node 0.
    runtime_->RunOnLoop([&] { nodes_[0]->overlay()->JoinAsFirst(); });
    for (int i = 1; i < n; ++i) {
      std::promise<Status> joined;
      runtime_->RunOnLoop([&] {
        nodes_[i]->overlay()->Join(nodes_[0]->host(),
                                   [&joined](const Status& s) { joined.set_value(s); });
      });
      const Status s = joined.get_future().get();
      ASSERT_TRUE(s.ok()) << "join " << i << ": " << s.ToString();
    }
  }

  void TearDown() override {
    // Stop (and join) the loop thread first: destroying nodes while queued
    // deliveries can still fire is a use-after-free window. Post-stop, node
    // destructors may still Cancel timers against the inert runtime.
    runtime_->Stop();
    nodes_.clear();
  }

  std::unique_ptr<LiveRuntime> runtime_;
  SkipNetConfig overlay_cfg_;
  FuseParams fuse_params_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

TEST_F(LiveFixture, CreateSignalNotifyOverWallClock) {
  BuildNodes(6);
  // Create a group of nodes {1,2,3} rooted at 1.
  std::promise<std::pair<Status, FuseId>> created;
  runtime_->RunOnLoop([&] {
    std::vector<NodeRef> members{nodes_[2]->ref(), nodes_[3]->ref()};
    nodes_[1]->fuse()->CreateGroup(members, [&created](const Status& s, FuseId id) {
      created.set_value({s, id});
    });
  });
  const auto [status, id] = created.get_future().get();
  ASSERT_TRUE(status.ok()) << status.ToString();

  std::atomic<int> fired{0};
  runtime_->RunOnLoop([&] {
    nodes_[2]->fuse()->RegisterFailureHandler(id, [&fired](FuseId) { fired++; });
    nodes_[3]->fuse()->RegisterFailureHandler(id, [&fired](FuseId) { fired++; });
  });
  runtime_->RunOnLoop([&] { nodes_[1]->fuse()->SignalFailure(id); });
  // Wall-clock wait for delivery.
  for (int spin = 0; spin < 100 && fired.load() < 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(fired.load(), 2);
}

TEST_F(LiveFixture, CrashDetectionOverWallClock) {
  BuildNodes(6);
  std::promise<std::pair<Status, FuseId>> created;
  runtime_->RunOnLoop([&] {
    std::vector<NodeRef> members{nodes_[2]->ref(), nodes_[4]->ref()};
    nodes_[1]->fuse()->CreateGroup(members, [&created](const Status& s, FuseId id) {
      created.set_value({s, id});
    });
  });
  const auto [status, id] = created.get_future().get();
  ASSERT_TRUE(status.ok());

  std::atomic<int> fired{0};
  runtime_->RunOnLoop([&] {
    nodes_[1]->fuse()->RegisterFailureHandler(id, [&fired](FuseId) { fired++; });
    nodes_[2]->fuse()->RegisterFailureHandler(id, [&fired](FuseId) { fired++; });
  });
  // Fail-stop crash of member 4.
  runtime_->RunOnLoop([&] {
    nodes_[4]->ShutdownAll();
    runtime_->SetHostDown(nodes_[4]->host(), true);
  });
  for (int spin = 0; spin < 400 && fired.load() < 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(fired.load(), 2) << "live runtime failed to deliver crash notifications";
}

// The ordered-map timer store: Cancel erases the queued event eagerly (one
// erase through the seq index) and rejects ids that already ran — the same
// accounting contract as the sim timer wheel.
TEST(LiveRuntimeTimerTest, CancelIsEagerAndRejectsFiredIds) {
  LiveRuntime::Config cfg;
  cfg.seed = 3;
  LiveRuntime runtime(cfg);
  std::atomic<int> fired{0};

  const TimerId cancelled = runtime.Schedule(Duration::Millis(80), [&fired] { fired += 100; });
  const TimerId kept = runtime.Schedule(Duration::Millis(5), [&fired] { fired += 1; });
  EXPECT_TRUE(runtime.Cancel(cancelled));
  EXPECT_FALSE(runtime.Cancel(cancelled)) << "double cancel must report false";
  EXPECT_FALSE(runtime.Cancel(TimerId())) << "invalid id must report false";

  for (int spin = 0; spin < 200 && fired.load() < 1; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(fired.load(), 1);
  EXPECT_FALSE(runtime.Cancel(kept)) << "cancel of an already-fired id must report false";

  // Past the cancelled timer's deadline: it must never fire.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_EQ(fired.load(), 1);
  runtime.Stop();
}

// Events with the same delay fire in schedule order. Each Schedule call
// samples the clock, so deadlines are non-decreasing (equal only when two
// calls land on one clock tick); the (deadline, seq) key makes the order
// schedule-FIFO in both cases — this pins the common path, while the seq
// tiebreak for exactly-equal keys is guaranteed by the map key shape.
TEST(LiveRuntimeTimerTest, SameDelayEventsFireInScheduleOrder) {
  LiveRuntime::Config cfg;
  cfg.seed = 4;
  LiveRuntime runtime(cfg);
  std::mutex mu;
  std::string order;
  for (const char* tag : {"a", "b", "c", "d"}) {
    runtime.Schedule(Duration::Millis(30), [&mu, &order, tag] {
      std::lock_guard<std::mutex> lock(mu);
      order += tag;
    });
  }
  for (int spin = 0; spin < 200; ++spin) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (order.size() == 4) {
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Join the loop thread before `mu`/`order` go out of scope: a starved
  // callback must not fire into destroyed locals.
  runtime.Stop();
  EXPECT_EQ(order, "abcd");
}

// Regression (PR 5): Send draws from the runtime rng, which is protocol
// state shared with the loop thread. Send used to sample it outside the
// lock, so concurrent Sends from an application thread and the loop thread
// raced on the generator state. Two threads hammering Send while the loop
// delivers must be clean under TSan (this test is part of the CI TSan job's
// LiveRuntime filter).
TEST(LiveRuntimeRaceTest, ConcurrentSendsAreDataRaceFree) {
  LiveRuntime::Config cfg;
  cfg.seed = 11;
  cfg.loss_probability = 0.2;  // force Bernoulli + UniformInt draws per send
  cfg.min_latency = Duration::Micros(50);
  cfg.max_latency = Duration::Micros(500);
  LiveRuntime runtime(cfg);
  LiveTransport* a = runtime.CreateHost();
  LiveTransport* b = runtime.CreateHost();
  std::atomic<int> delivered{0};
  std::atomic<int> acked{0};
  runtime.RegisterHandler(b->local_host(), msgtype::kTest,
                          [&delivered](const WireMessage&) { delivered++; });

  auto send_burst = [&](LiveTransport* t, HostId to, int count) {
    for (int i = 0; i < count; ++i) {
      WireMessage m;
      m.to = to;
      m.type = msgtype::kTest;
      m.category = MsgCategory::kApp;
      t->Send(std::move(m), [&acked](const Status&) { acked++; });
    }
  };
  // Several application threads hammering Send while the loop thread sends
  // continuously from scheduled events (the protocol's own path) AND draws
  // protocol jitter through env().rng(), exactly as the overlay's ping
  // maintenance does — the interleavings of the original race, dense enough
  // that the unlocked draws of the buggy version overlap rather than being
  // serialized through the surrounding critical sections.
  constexpr int kAppThreads = 4;
  constexpr int kAppSends = 500;
  constexpr int kLoopBursts = 50;
  constexpr int kLoopBurstSends = 100;
  const int total = kAppThreads * kAppSends + kLoopBursts * kLoopBurstSends;
  for (int i = 0; i < kLoopBursts; ++i) {
    runtime.Schedule(Duration::Zero(), [&] {
      // A long lock-free stretch of protocol draws: wide enough that an
      // application thread's Send reliably overlaps it, so a Send path that
      // shared this generator (even with its own draws locked) is flagged.
      for (int d = 0; d < 20000; ++d) {
        runtime.rng().UniformInt(0, 1000);
      }
      send_burst(a, b->local_host(), kLoopBurstSends);
    });
  }
  std::vector<std::thread> apps;
  for (int t = 0; t < kAppThreads; ++t) {
    apps.emplace_back([&] { send_burst(a, b->local_host(), kAppSends); });
  }
  for (auto& t : apps) {
    t.join();
  }
  for (int spin = 0; spin < 1000 && acked.load() < total; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  runtime.Stop();
  EXPECT_EQ(acked.load(), total) << "every send must resolve its callback";
  EXPECT_GT(delivered.load(), 0);
}

// Regression (PR 5): RunOnLoop used to block forever when Stop() won the
// race — the queued closure was dropped without running and the caller's
// future never resolved. Stop must release every pending caller with "not
// run", and post-stop RunOnLoop must refuse immediately.
TEST(LiveRuntimeStopTest, StopReleasesPendingRunOnLoop) {
  for (int round = 0; round < 20; ++round) {
    LiveRuntime::Config cfg;
    cfg.seed = 5;
    auto runtime = std::make_unique<LiveRuntime>(cfg);
    std::atomic<int> ran{0};
    std::atomic<int> reported_ran{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> callers;
    callers.reserve(4);
    for (int t = 0; t < 4; ++t) {
      callers.emplace_back([&] {
        while (!go.load()) {
        }
        for (int i = 0; i < 50; ++i) {
          if (runtime->RunOnLoop([&ran] { ran++; })) {
            reported_ran++;
          }
        }
      });
    }
    go = true;
    // Race Stop against the callers; some closures run, the rest must be
    // refused — but nobody may hang.
    runtime->Stop();
    for (auto& c : callers) {
      c.join();
    }
    // The return value tells the truth: exactly the closures reported as run
    // actually ran.
    EXPECT_EQ(ran.load(), reported_ran.load());
    // Post-stop calls refuse immediately.
    EXPECT_FALSE(runtime->RunOnLoop([] {}));
  }
}

}  // namespace
}  // namespace fuse
