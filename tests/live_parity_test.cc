// Sim ↔ live parity: the backend-parameterized fault schedules from
// runtime/scenario.h — the same definitions property_test.cc runs on the
// discrete-event simulator — executed against the wall-clock LiveCluster.
// This is the paper's section 7 claim made enforceable: one scenario
// definition, two deployments, same agreement guarantee. These run as the
// `live-parity` ctest label (gated in CI's main job and, for the
// partition/heal schedule's lock discipline, under TSan).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <tuple>

#include "runtime/live_cluster.h"
#include "runtime/scenario.h"

namespace fuse {
namespace {

ScenarioOptions LiveOptions(uint64_t seed) {
  ScenarioOptions opts;
  opts.seed = seed;
  // Smaller than the sim sweep (36 nodes, 6 groups): the point here is
  // real-thread coverage per wall-clock second, not schedule breadth.
  opts.num_groups = 3;
  opts.min_group_size = 2;
  opts.max_group_size = 4;
  opts.timing = ScenarioTiming::Live();
  return opts;
}

// Parameterized over (scenario, transport): the same schedules run on the
// in-process message layer and — on Linux — on the per-host UDP datagram
// fabrics, where a crash is observed as silence + retransmit exhaustion
// rather than an error signal. CI selects the UDP leg by test name (-R Udp).
class LiveParityScenario
    : public ::testing::TestWithParam<std::tuple<ScenarioKind, TransportKind>> {};

TEST_P(LiveParityScenario, AgreementHoldsOverWallClock) {
  const ScenarioKind kind = std::get<0>(GetParam());
  const TransportKind transport = std::get<1>(GetParam());
#if !defined(__linux__)
  if (transport != TransportKind::kInProcess) {
    GTEST_SKIP() << "real transports need the Linux epoll loop";
  }
#endif
  // ChurnDuringCreate draws groups from the stable lower index half, so it
  // needs headroom over max_group_size.
  const int num_nodes = kind == ScenarioKind::kChurnDuringCreate ? 16 : 10;
  LiveClusterConfig cfg = LiveClusterConfig::FastProtocol(num_nodes, /*seed=*/42);
  cfg.transport = transport;
  LiveCluster cluster(cfg);
  cluster.Build();
  const ScenarioResult result = RunAgreementScenario(cluster, kind, LiveOptions(42));
  EXPECT_TRUE(result.ok()) << ScenarioKindName(kind) << " live: " << result.ToString();
  // A skipped target (all retried creates definitely failed under churn) is
  // a legal vacuous outcome on the nondeterministic wall-clock backend;
  // anything else must have exercised the notification path.
  if (!result.target_skipped) {
    EXPECT_GE(result.notified, 1) << "scenario did not exercise the notification path";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, LiveParityScenario,
    ::testing::Combine(::testing::Values(ScenarioKind::kCrashMember,
                                         ScenarioKind::kPartitionHeal,
                                         ScenarioKind::kChurnDuringCreate),
                       ::testing::Values(TransportKind::kInProcess, TransportKind::kUdp)),
    [](const ::testing::TestParamInfo<std::tuple<ScenarioKind, TransportKind>>& pinfo) {
      std::string name = ScenarioKindName(std::get<0>(pinfo.param));
      if (std::get<1>(pinfo.param) == TransportKind::kUdp) {
        name += "Udp";
      }
      return name;
    });

// Machine failure on the wall-clock backend: nodes_per_machine=3 groups the
// 12 nodes into 4 fault domains (on the real transports, co-located nodes
// also share one fabric and one port — the single-process analogue of a
// multi-tenant worker). One machine dies as a unit; every group spanning it
// must notify each live member exactly once, and machine-disjoint groups
// must stay silent. Same definition as the sim leg (property_test.cc) and
// the multi-tenant process leg (process_multinode_test.cc).
class LiveMachineFailure : public ::testing::TestWithParam<TransportKind> {};

TEST_P(LiveMachineFailure, SpanningGroupsNotifyDisjointGroupsStaySilent) {
  const TransportKind transport = GetParam();
#if !defined(__linux__)
  if (transport != TransportKind::kInProcess) {
    GTEST_SKIP() << "real transports need the Linux epoll loop";
  }
#endif
  LiveClusterConfig cfg = LiveClusterConfig::FastProtocol(12, /*seed=*/42);
  cfg.transport = transport;
  cfg.nodes_per_machine = 3;
  LiveCluster cluster(cfg);
  cluster.Build();
  const ScenarioResult result =
      RunAgreementScenario(cluster, ScenarioKind::kMachineFailure, LiveOptions(42));
  EXPECT_TRUE(result.ok()) << "MachineFailure live: " << result.ToString();
  EXPECT_GE(result.notified, 1) << "scenario did not exercise the notification path";
}

INSTANTIATE_TEST_SUITE_P(Transports, LiveMachineFailure,
                         ::testing::Values(TransportKind::kInProcess, TransportKind::kUdp),
                         [](const ::testing::TestParamInfo<TransportKind>& pinfo) {
                           return std::string(pinfo.param == TransportKind::kUdp ? "Udp"
                                                                                 : "InProcess");
                         });

// Fault-rule parity at the runtime level: partitions applied through the
// same FaultInjector vocabulary the sim fabric consults, exercised against
// the live loop thread (this is the TSan lock-discipline canary for
// LiveRuntime::Send's rule checks).
TEST(LiveClusterFaults, PartitionBlocksAndHealRestores) {
  LiveCluster cluster(LiveClusterConfig::FastProtocol(6, /*seed=*/7));
  cluster.Build();

  // Partition nodes {0,1} away from {2..5} while ping traffic is flowing.
  std::vector<HostId> side{cluster.node(0).host(), cluster.node(1).host()};
  cluster.ApplyFaults([&side](FaultInjector& f) { f.PartitionHosts(side); });

  // Traffic across the boundary must fail; traffic within a side must flow.
  Status cross = Status::Ok();
  Status within = Status::Broken("unset");
  cluster.Run([&] {
    WireMessage m;
    m.to = cluster.node(3).host();
    m.type = msgtype::kTest;
    m.category = MsgCategory::kApp;
    cluster.node(0).transport()->Send(std::move(m), [&cross](const Status& s) { cross = s; });
    WireMessage m2;
    m2.to = cluster.node(1).host();
    m2.type = msgtype::kTest;
    m2.category = MsgCategory::kApp;
    cluster.node(0).transport()->Send(std::move(m2), [&within](const Status& s) { within = s; });
  });
  ASSERT_TRUE(cluster.Await([&] { return !cross.ok() && within.ok(); }, Duration::Seconds(5)))
      << "cross=" << cross.ToString() << " within=" << within.ToString();

  // Heal; cross-boundary traffic must flow again.
  cluster.ApplyFaults([](FaultInjector& f) { f.ClearPartitions(); });
  Status healed = Status::Broken("unset");
  cluster.Run([&] {
    WireMessage m;
    m.to = cluster.node(3).host();
    m.type = msgtype::kTest;
    m.category = MsgCategory::kApp;
    cluster.node(0).transport()->Send(std::move(m), [&healed](const Status& s) { healed = s; });
  });
  EXPECT_TRUE(cluster.Await([&] { return healed.ok(); }, Duration::Seconds(5)))
      << healed.ToString();
}

// Regression (PR 6): instant crash/restart round trip with no down-window.
// The incarnation-aware join path must evict the dead incarnation's stale
// table entries instead of bouncing the join search back to the joiner, so
// the rejoin cannot depend on the survivors' ping timeouts having fired.
TEST(LiveClusterLifecycle, InstantRestartRejoins) {
  LiveCluster cluster(LiveClusterConfig::FastProtocol(6, /*seed=*/11));
  cluster.Build();
  cluster.Crash(2);
  cluster.Restart(2);
  bool joined = false;
  cluster.Run([&] { joined = cluster.IsJoined(2); });
  EXPECT_TRUE(joined) << "instantly-restarted node did not rejoin the overlay";
}

// Regression (PR 5): the sender's ack used to fire Ok at 2x latency even
// when the delivery-time fault re-check dropped the message. With a
// partition applied while the message is in flight, the callback must report
// Broken — the sim fabric's per-attempt semantics (a send across a fault
// never acks Ok).
TEST(LiveClusterFaults, MidFlightPartitionBreaksTheAck) {
  LiveRuntime::Config cfg;
  cfg.seed = 9;
  // Latency floor far above the time it takes to apply the partition below,
  // so "partition lands while in flight" is deterministic, not a race.
  cfg.min_latency = Duration::Millis(150);
  cfg.max_latency = Duration::Millis(200);
  LiveRuntime runtime(cfg);
  LiveTransport* a = runtime.CreateHost();
  LiveTransport* b = runtime.CreateHost();

  std::atomic<bool> delivered{false};
  std::atomic<bool> ack_seen{false};
  Status acked = Status::Ok();
  b->RegisterHandler(msgtype::kTest, [&delivered](const WireMessage&) { delivered = true; });
  WireMessage m;
  m.to = b->local_host();
  m.type = msgtype::kTest;
  m.category = MsgCategory::kApp;
  a->Send(std::move(m), [&acked, &ack_seen](const Status& s) {
    acked = s;
    ack_seen = true;
  });
  // Partition {a} away while the message is still in its >=150 ms flight.
  const HostId ha = a->local_host();
  runtime.ApplyFaults([ha](FaultInjector& f) { f.PartitionHosts({ha}); });

  for (int spin = 0; spin < 500 && !ack_seen.load(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  runtime.Stop();  // quiesce before reading `acked`
  ASSERT_TRUE(ack_seen.load());
  EXPECT_FALSE(delivered.load()) << "delivery-time re-check must drop the message";
  EXPECT_FALSE(acked.ok()) << "ack must report the delivery-time drop, got "
                           << acked.ToString();
}

}  // namespace
}  // namespace fuse
