// Quickstart: the FUSE API in five minutes.
//
// Builds a small simulated deployment, creates a FUSE group, registers
// failure handlers, and demonstrates the core guarantee: when anything
// breaks — here, a member crash — every live member hears exactly one
// failure notification.
//
// Run: ./build/examples/quickstart
#include <cstdio>

#include "runtime/sim_cluster.h"

using namespace fuse;

int main() {
  std::printf("== FUSE quickstart ==\n\n");

  // A 32-node overlay on a simulated wide-area topology.
  ClusterConfig config;
  config.num_nodes = 32;
  config.seed = 42;
  config.cost = CostModel::Simulator();
  SimCluster cluster(config);
  cluster.Build();
  std::printf("built a %zu-node SkipNet overlay (avg %.1f neighbors/node)\n\n", cluster.size(),
              cluster.AvgDistinctNeighbors());

  // 1. Create a FUSE group spanning nodes {3, 11, 17, 26}; node 3 is the
  //    creator ("root"). CreateGroup has blocking semantics: the callback
  //    fires only after every member was contacted.
  const std::vector<size_t> members{3, 11, 17, 26};
  FuseId group_id;
  cluster.node(3).fuse()->CreateGroup(cluster.RefsOf(members),
                                      [&](const Status& status, FuseId id) {
                                        std::printf("CreateGroup -> %s, id=%s\n",
                                                    status.ToString().c_str(),
                                                    id.ToString().c_str());
                                        group_id = id;
                                      });
  cluster.sim().RunUntilCondition([&] { return group_id.valid(); },
                                  cluster.sim().Now() + Duration::Minutes(1));

  // 2. The application distributes the FUSE id to the group (here we just
  //    hand it over) and every member registers a failure handler.
  for (size_t m : members) {
    cluster.node(m).fuse()->RegisterFailureHandler(group_id, [m, &cluster](FuseId id) {
      std::printf("  [node %2zu] FAILURE notification for %s at t=%.1fs\n", m,
                  id.ToString().c_str(), cluster.sim().Now().ToSecondsF());
    });
  }
  std::printf("\nall members registered handlers; group is being monitored by the overlay's\n");
  std::printf("existing ping traffic (a 20-byte SHA-1 piggyback; zero extra messages).\n\n");

  // 3. Kill a member. The liveness checking tree notices, repair fails
  //    (the member is really gone), and everyone gets notified.
  std::printf("crashing node 17 at t=%.1fs ...\n", cluster.sim().Now().ToSecondsF());
  cluster.Crash(17);
  cluster.sim().RunFor(Duration::Minutes(5));

  // 4. The group is gone everywhere; a late registration on the dead id
  //    fires immediately — no orphaned state, ever.
  std::printf("\nregistering on the dead id (late registration fires immediately):\n");
  cluster.node(11).fuse()->RegisterFailureHandler(group_id, [](FuseId) {
    std::printf("  [node 11] immediate callback for a dead id\n");
  });
  cluster.sim().RunFor(Duration::Seconds(1));

  std::printf("\ndone: failure notifications never fail.\n");
  return 0;
}
