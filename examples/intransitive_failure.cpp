// Fail-on-send under an intransitive connectivity failure (paper sections
// 2 and 3.4).
//
// A and B can both talk to everyone else, but not to each other — the
// firewall/misconfiguration case a membership service handles badly (declare
// someone dead? block? stay inconsistent?). With FUSE the *application*
// notices the broken path on its next send and explicitly signals only the
// group that spans it; unrelated groups on the same nodes keep working.
//
// Run: ./build/examples/intransitive_failure
#include <cstdio>
#include <vector>

#include "runtime/sim_cluster.h"

using namespace fuse;

namespace {

FuseId CreateSync(SimCluster& cluster, size_t root, const std::vector<size_t>& members) {
  FuseId id;
  bool done = false;
  cluster.node(root).fuse()->CreateGroup(cluster.RefsOf(members),
                                         [&](const Status& s, FuseId gid) {
                                           done = true;
                                           if (s.ok()) {
                                             id = gid;
                                           }
                                         });
  cluster.sim().RunUntilCondition([&] { return done; },
                                  cluster.sim().Now() + Duration::Minutes(2));
  return id;
}

}  // namespace

int main() {
  std::printf("== intransitive connectivity failure: fail-on-send ==\n\n");

  ClusterConfig config;
  config.num_nodes = 24;
  config.seed = 99;
  config.cost = CostModel::Simulator();
  SimCluster cluster(config);
  cluster.Build();

  const size_t a = 4, b = 9, c = 15, d = 20;
  // Group 1 spans the soon-to-be-broken A-B path; group 2 shares node A but
  // uses healthy paths only.
  const FuseId work_group = CreateSync(cluster, a, {a, b, c});
  const FuseId other_group = CreateSync(cluster, a, {a, c, d});
  std::printf("group-1 (A=%zu, B=%zu, C=%zu): %s\n", a, b, c, work_group.ToString().c_str());
  std::printf("group-2 (A=%zu, C=%zu, D=%zu): %s\n\n", a, c, d, other_group.ToString().c_str());

  int g1_notifications = 0, g2_notifications = 0;
  for (size_t m : {a, b, c}) {
    cluster.node(m).fuse()->RegisterFailureHandler(work_group, [&, m](FuseId) {
      std::printf("  [node %2zu] group-1 failure notification at t=%.1fs\n", m,
                  cluster.sim().Now().ToSecondsF());
      ++g1_notifications;
    });
  }
  for (size_t m : {a, c, d}) {
    cluster.node(m).fuse()->RegisterFailureHandler(other_group, [&](FuseId) {
      ++g2_notifications;
    });
  }

  // The fault: A and B can no longer exchange packets, though both remain
  // reachable from everywhere else. FUSE's liveness checks flow through the
  // overlay and may never cross the A-B edge directly, so FUSE alone might
  // never notice — which is exactly why detection is a shared responsibility.
  std::printf("blocking the A<->B path (both still reachable by everyone else) ...\n");
  cluster.net().faults().BlockPair(cluster.node(a).host(), cluster.node(b).host());
  cluster.sim().RunFor(Duration::Minutes(3));
  std::printf("  after 3 minutes: group-1 notifications = %d (FUSE cannot see every path)\n\n",
              g1_notifications);

  // The application tries to use the path, fails, and signals FUSE
  // (fail-on-send): now everyone hears, within network latency.
  std::printf("application on A attempts a transfer to B, times out, and calls "
              "SignalFailure(group-1) ...\n");
  cluster.node(a).fuse()->SignalFailure(work_group);
  cluster.sim().RunFor(Duration::Minutes(2));

  std::printf("\nresults:\n");
  std::printf("  group-1 notifications: %d of 3 members (guaranteed delivery)\n",
              g1_notifications);
  std::printf("  group-2 notifications: %d (unaffected: scope is the group, not the node)\n",
              g2_notifications);
  std::printf("  group-2 still live on A: %s\n",
              cluster.node(a).fuse()->IsParticipant(other_group) ? "yes" : "no");
  std::printf("\na membership service would have had to declare A or B dead (both are fine),\n");
  std::printf("block, or stay inconsistent. FUSE failed exactly the broken collaboration.\n");
  return 0;
}
