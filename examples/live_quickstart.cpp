// Live quickstart: the exact quickstart flow — build, create a group, crash
// a member, everyone hears exactly one notification — but on the wall-clock
// LiveCluster backend instead of the simulator. Same harness API, same
// protocol stack, real threads and real time: the paper's "identical code
// base except for the base messaging layer" (section 7), runnable in a few
// seconds thanks to the scaled protocol constants.
//
// Run: ./build/examples/example_live_quickstart
#include <atomic>
#include <cstdio>

#include "runtime/live_cluster.h"

using namespace fuse;

int main() {
  std::printf("== FUSE live (wall-clock) quickstart ==\n\n");

  LiveCluster cluster(LiveClusterConfig::FastProtocol(/*num_nodes=*/8, /*seed=*/42));
  cluster.Build();
  std::printf("built a %zu-node overlay on the threaded live runtime\n\n", cluster.size());

  // 1. Create a FUSE group spanning nodes {1, 3, 5}; node 1 is the root.
  const std::vector<size_t> members{1, 3, 5};
  FuseId group_id;
  bool created = false;
  cluster.Run([&] {
    cluster.node(1).fuse()->CreateGroup(cluster.RefsOf(members),
                                        [&](const Status& status, FuseId id) {
                                          std::printf("CreateGroup -> %s, id=%s\n",
                                                      status.ToString().c_str(),
                                                      id.ToString().c_str());
                                          group_id = id;
                                          created = status.ok();
                                        });
  });
  if (!cluster.Await([&] { return group_id.valid() || created; }, Duration::Seconds(10)) ||
      !created) {
    std::printf("group creation failed\n");
    return 1;
  }

  // 2. Every member registers a failure handler.
  std::atomic<int> fired{0};
  cluster.Run([&] {
    for (size_t m : members) {
      cluster.node(m).fuse()->RegisterFailureHandler(group_id, [m, &fired](FuseId id) {
        std::printf("  [node %zu] FAILURE notification for %s\n", m, id.ToString().c_str());
        fired++;
      });
    }
  });
  std::printf("\nall members registered handlers; crashing node 5 ...\n");

  // 3. Fail-stop crash of member 5: the two survivors must each hear exactly
  //    one notification within the (scaled) analytic bound.
  cluster.Crash(5);
  if (!cluster.Await([&] { return fired.load() >= 2; }, Duration::Seconds(10))) {
    std::printf("notifications missing: fired=%d (want 2)\n", fired.load());
    return 1;
  }
  if (fired.load() != 2) {
    std::printf("duplicate notifications: fired=%d (want 2)\n", fired.load());
    return 1;
  }

  std::printf("\ndone: failure notifications never fail — on real threads, too.\n");
  return 0;
}
