// Event delivery over SV trees — the application FUSE was invented for
// (paper section 4, the Herald project).
//
// A publisher owns a topic; subscribers attach through Subscriber/Volunteer
// trees whose content-forwarding links are each guarded by one FUSE group.
// The demo shows normal delivery, then a parent crash: FUSE notifies the
// children, they garbage collect the dead link and re-subscribe under a new
// version stamp, and delivery resumes.
//
// Run: ./build/examples/event_delivery
#include <cstdio>
#include <memory>
#include <vector>

#include "runtime/sim_cluster.h"
#include "svtree/sv_tree.h"

using namespace fuse;

int main() {
  std::printf("== scalable event delivery with SV trees + FUSE ==\n\n");

  ClusterConfig config;
  config.num_nodes = 48;
  config.seed = 7;
  config.cost = CostModel::Simulator();
  config.overlay.table.leaf_set_half = 2;  // multi-hop routes => real trees
  SimCluster cluster(config);
  cluster.Build();

  std::vector<std::unique_ptr<SvTreeNode>> apps(cluster.size());
  for (size_t i = 0; i < cluster.size(); ++i) {
    auto& node = cluster.node(i);
    apps[i] = std::make_unique<SvTreeNode>(node.transport(), node.overlay(), node.fuse());
  }

  const size_t publisher = cluster.size() - 1;
  const std::string topic = "market-data";
  apps[publisher]->CreateTopic(topic);
  std::printf("node %zu publishes topic '%s'\n", publisher, topic.c_str());

  // Subscribe 20 nodes (high names first so subscriptions get intercepted by
  // earlier subscribers and form a multi-level tree).
  std::vector<size_t> subscribers;
  std::vector<int> received(cluster.size(), 0);
  for (size_t s = 20; s >= 1; --s) {
    subscribers.push_back(s);
    apps[s]->Subscribe(topic, cluster.RefOf(publisher),
                       [s, &received](const std::string&, uint64_t seq,
                                      const std::vector<uint8_t>&) {
                         (void)seq;
                         received[s]++;
                       });
    cluster.sim().RunUntilCondition([&] { return apps[s]->HasUplink(topic); },
                                    cluster.sim().Now() + Duration::Minutes(3));
  }
  cluster.sim().RunFor(Duration::Seconds(30));

  size_t parents = 0;
  for (size_t s : subscribers) {
    if (apps[s]->NumChildren(topic) > 0) {
      ++parents;
    }
  }
  std::printf("%zu subscribers attached; %zu of them forward content for others\n\n",
              subscribers.size(), parents);

  std::printf("publishing 3 events ...\n");
  for (int k = 0; k < 3; ++k) {
    apps[publisher]->Publish(topic, {static_cast<uint8_t>(k)});
  }
  cluster.sim().RunFor(Duration::Minutes(1));
  int ok = 0;
  for (size_t s : subscribers) {
    ok += received[s] == 3 ? 1 : 0;
  }
  std::printf("  %d/%zu subscribers received all 3 events\n\n", ok, subscribers.size());

  // Crash an interior parent: FUSE fails the groups guarding its links, the
  // children re-subscribe, the tree heals.
  size_t victim = 0;
  for (size_t s : subscribers) {
    if (apps[s]->NumChildren(topic) > 0) {
      victim = s;
      break;
    }
  }
  std::printf("crashing forwarding subscriber node %zu (it had %zu children) ...\n", victim,
              apps[victim]->NumChildren(topic));
  apps[victim]->Shutdown();
  cluster.Crash(victim);
  cluster.sim().RunFor(Duration::Minutes(8));

  int relinked = 0;
  for (size_t s : subscribers) {
    if (s != victim && apps[s]->HasUplink(topic)) {
      ++relinked;
    }
  }
  std::printf("  %d/%zu surviving subscribers re-linked via FUSE notification + resubscribe\n",
              relinked, subscribers.size() - 1);

  std::printf("\npublishing 2 more events after the repair ...\n");
  for (int k = 3; k < 5; ++k) {
    apps[publisher]->Publish(topic, {static_cast<uint8_t>(k)});
  }
  cluster.sim().RunFor(Duration::Minutes(1));
  ok = 0;
  for (size_t s : subscribers) {
    if (s != victim && received[s] >= 5) {
      ++ok;
    }
  }
  std::printf("  %d/%zu surviving subscribers received the post-repair events\n", ok,
              subscribers.size() - 1);

  uint64_t resubs = 0, gcs = 0;
  for (size_t s : subscribers) {
    if (s == victim) {
      continue;
    }
    resubs += apps[s]->stats().resubscribes;
    gcs += apps[s]->stats().links_garbage_collected;
  }
  std::printf("\nrepair accounting: %llu links garbage-collected, %llu resubscriptions\n",
              static_cast<unsigned long long>(gcs), static_cast<unsigned long long>(resubs));
  std::printf("done: fate-sharing via FUSE made the repair logic trivial.\n");
  return 0;
}
