// CDN update propagation with FUSE fate-sharing (paper section 4.1).
//
// A content delivery network replicates documents to per-document replica
// sets and pushes updates to them. Instead of per-tree heartbeats, each
// document's replica set shares fate through one FUSE group: if any replica
// (or the path to it) fails, every replica hears the notification, drops its
// copy, and the origin re-replicates onto a fresh set — the paper's
// "garbage collect with FUSE, then retry with new state" design pattern.
//
// The group bookkeeping every FUSE application needs (the table of live
// groups, a create pipeline, per-member failure watches) goes through
// GroupService — the same facade bench_groups_1m drives at 1M groups — with
// the group fast path (incremental link digests + coalesced timers) on.
//
// Run: ./build/examples/cdn_invalidation
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "runtime/sim_cluster.h"
#include "service/group_service.h"

using namespace fuse;

namespace {

struct Document {
  std::string name;
  int version = 1;
  std::vector<size_t> replicas;
  FuseId group;
  int replications = 0;
};

class Cdn {
 public:
  Cdn(SimCluster& cluster, GroupService& svc, size_t origin)
      : cluster_(cluster), svc_(svc), origin_(origin) {}

  void ReplicateDocument(const std::string& name) {
    docs_[name].name = name;
    PlaceReplicas(name);
    Settle();
  }

  // Queues one placement round: a create through the service, whose
  // completion wires the failure watches. A failed create (or a later FUSE
  // notification) queues another round; Settle() drains whatever is queued.
  void PlaceReplicas(const std::string& name) {
    Document& doc = docs_[name];
    doc.replications++;
    doc.replicas = cluster_.PickLiveNodes(3);
    svc_.Create(origin_, doc.replicas, [this, name](const Status& s, FuseId id) {
      Document& d = docs_[name];
      if (!s.ok()) {
        std::printf("  [%s] replication failed (%s); retrying\n", name.c_str(),
                    s.ToString().c_str());
        PlaceReplicas(name);
        return;
      }
      d.group = id;
      // The origin garbage collects and re-replicates on failure.
      svc_.Watch(origin_, id, [this, name](FuseId) {
        std::printf("  [%s] FUSE notification at origin: replica set lost at t=%.0fs; "
                    "re-replicating\n",
                    name.c_str(), cluster_.sim().Now().ToSecondsF());
        PlaceReplicas(name);
      });
      // Each replica garbage collects its copy on failure.
      for (size_t r : d.replicas) {
        svc_.Watch(r, id, [name, r](FuseId) {
          std::printf("  [%s] replica on node %zu dropped its copy\n", name.c_str(), r);
        });
      }
      std::printf("  [%s] v%d replicated to nodes {%zu, %zu, %zu}, fuse id %s\n",
                  name.c_str(), d.version, d.replicas[0], d.replicas[1], d.replicas[2],
                  id.ToString().c_str());
    });
  }

  // Runs queued placements (including re-replications a notification queued
  // mid-simulation) to completion.
  void Settle() {
    if (!svc_.Drain(Duration::Minutes(5))) {
      std::printf("  warning: placements still pending at drain bound\n");
    }
  }

  // Pushing an update is just application traffic; FUSE guarantees the
  // replica set either is intact or everyone has heard otherwise.
  void PushUpdate(const std::string& name) {
    Document& doc = docs_[name];
    doc.version++;
    std::printf("  [%s] pushed v%d to %zu replicas\n", name.c_str(), doc.version,
                doc.replicas.size());
  }

  const Document& doc(const std::string& name) { return docs_[name]; }

 private:
  SimCluster& cluster_;
  GroupService& svc_;
  size_t origin_;
  std::map<std::string, Document> docs_;
};

}  // namespace

int main() {
  std::printf("== CDN update propagation guarded by FUSE groups ==\n\n");

  ClusterConfig config;
  config.num_nodes = 40;
  config.seed = 11;
  config.cost = CostModel::Simulator();
  config.fuse.incremental_link_digest = true;
  config.fuse.coalesce_group_timers = true;
  SimCluster cluster(config);
  cluster.Build();

  const size_t origin = 0;
  GroupService svc(cluster);
  Cdn cdn(cluster, svc, origin);
  std::printf("replicating three documents from origin node %zu:\n", origin);
  cdn.ReplicateDocument("/index.html");
  cdn.ReplicateDocument("/logo.png");
  cdn.ReplicateDocument("/app.js");
  std::printf("  service: %zu live groups, %zu creates issued\n", svc.NumLive(),
              static_cast<size_t>(svc.counters().creates_ok));

  std::printf("\npushing updates:\n");
  cdn.PushUpdate("/index.html");
  cdn.PushUpdate("/app.js");

  // Fail one replica of /index.html; its group burns, the origin re-places.
  const size_t victim = cdn.doc("/index.html").replicas[1];
  std::printf("\ncrashing replica node %zu of /index.html at t=%.0fs ...\n", victim,
              cluster.sim().Now().ToSecondsF());
  cluster.Crash(victim);
  cluster.sim().RunFor(Duration::Minutes(6));
  cdn.Settle();

  std::printf("\nfinal state:\n");
  int failures = 0;
  for (const char* name : {"/index.html", "/logo.png", "/app.js"}) {
    const auto& d = cdn.doc(name);
    std::printf("  %-12s v%d, %d placement round(s), replicas {%zu, %zu, %zu}\n", name,
                d.version, d.replications, d.replicas[0], d.replicas[1], d.replicas[2]);
    if (svc.FindLive(d.group) == nullptr) {
      std::printf("  %-12s has no live group — placement did not recover\n", name);
      failures++;
    }
  }
  if (cdn.doc("/index.html").replications < 2) {
    std::printf("error: /index.html was never re-replicated after the crash\n");
    failures++;
  }
  std::printf("\nnote: /logo.png and /app.js were untouched — failure scope is the group,\n");
  std::printf("not the node (per-document fate-sharing, paper section 4.1).\n");
  return failures == 0 ? 0 : 1;
}
